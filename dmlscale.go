// Package dmlscale models the scalability of distributed machine learning,
// reproducing Ulanov, Simanovsky and Marwah, "Modeling Scalability of
// Distributed Machine Learning" (ICDE 2017).
//
// The framework views a distributed ML algorithm as BSP supersteps whose
// time is computation plus communication, t(n) = t_cp(n) + t_cm(n), and
// measures scalability by the speedup s(n) = t(1)/t(n). Building a model
// needs only the algorithm's complexity formulas and the hardware spec — no
// profiling runs.
//
// Quick start:
//
//	w := dmlscale.Workload{
//		Name:            "my network",
//		FlopsPerExample: 6 * 12e6, // 6·W for dense nets
//		BatchSize:       60000,
//		ModelBits:       64 * 12e6,
//	}
//	model, err := dmlscale.GradientDescent(w, dmlscale.XeonE31240(), dmlscale.SparkComm())
//	n, s, err := model.OptimalWorkers(16)
//
// Every named construction — communication protocols (including composed
// ones), hardware presets, graph families, network architectures and
// workload families (strong/weak gradient descent, graph inference, MRF
// belief propagation, asynchronous gradient descent) — resolves through a
// single registry, so the same names work identically in Go code, in the
// CLIs and in JSON scenario files. ProtocolKinds, HardwarePresets,
// WorkloadFamilies and Architectures list the catalogs.
//
// Beyond single models, a JSON Suite declares many scenarios at once — an
// explicit list and/or a parameter sweep over bandwidth × protocol ×
// precision × worker range — and EvaluateSuite computes every speedup curve
// concurrently with per-curve error isolation. Suite-level workers and
// intra-curve parallelism (worker-count sampling, Monte-Carlo trial
// sharding) draw from one shared budget sized by SetParallelism (default
// GOMAXPROCS), and results are bit-identical at any setting:
//
//	suite, err := dmlscale.LoadSuite("sweep.json")
//	results, err := dmlscale.EvaluateSuite(suite, 0) // 0 = whole budget
//
// The subpackages under internal implement the full system: analytic models
// (core, comm), the catalog (registry), the scenario/suite schema
// (scenario), substrates (nn, nncost, gd, graph, partition, mrf, bp),
// discrete-event experiment simulators (cluster, sparksim, gpusim, shmsim)
// and the per-figure reproduction harness (experiments).
package dmlscale

import (
	"context"

	"dmlscale/internal/comm"
	"dmlscale/internal/core"
	"dmlscale/internal/experiments"
	"dmlscale/internal/gd"
	"dmlscale/internal/hardware"
	"dmlscale/internal/memo"
	"dmlscale/internal/planner"
	"dmlscale/internal/registry"
	"dmlscale/internal/scenario"
	"dmlscale/internal/units"
)

// Core modeling types.
type (
	// Model is a per-superstep time model with Speedup, Efficiency,
	// SpeedupCurve and OptimalWorkers methods.
	Model = core.Model
	// Curve is a sampled speedup curve.
	Curve = core.Curve
	// Point is one curve sample.
	Point = core.Point
	// Workload describes a gradient-descent workload: per-example flops,
	// batch size and communicated model bits.
	Workload = gd.Workload
	// Node is one homogeneous computing device.
	Node = hardware.Node
	// Network is the communication medium.
	Network = hardware.Network
	// CommModel maps payload and worker count to communication time.
	CommModel = comm.Model
	// Seconds is a duration in seconds.
	Seconds = units.Seconds
	// Flops is a computation rate.
	Flops = units.Flops
	// BitsPerSecond is a bandwidth.
	BitsPerSecond = units.BitsPerSecond
	// Bits is a data size.
	Bits = units.Bits
)

// Scenario and suite types: the JSON schema deployment tools emit.
type (
	// Scenario is the on-disk description of one modeling run.
	Scenario = scenario.Scenario
	// Suite declares many scenarios: a list, a sweep, or both.
	Suite = scenario.Suite
	// Sweep is a parameter grid over a base scenario.
	Sweep = scenario.Sweep
	// SuiteResult is one evaluated suite entry (curve or isolated error).
	SuiteResult = scenario.Result
	// WorkloadSpec selects a workload family and its complexity figures.
	WorkloadSpec = scenario.WorkloadSpec
	// HardwareSpec names a hardware preset or describes a custom node.
	HardwareSpec = scenario.HardwareSpec
	// ProtocolSpec selects and parameterizes a communication protocol.
	ProtocolSpec = scenario.ProtocolSpec
	// GraphSpec describes the inference graph of the graph families.
	GraphSpec = scenario.GraphSpec
	// ConvergenceSpec is the scenario block that turns per-iteration
	// curves into time-to-accuracy plans: a batch-to-iterations rule and
	// the iteration budget at one worker.
	ConvergenceSpec = scenario.ConvergenceSpec
)

// Planner types: the decision-making layer on top of evaluation.
type (
	// Plan is the planner's answer for one scenario: the optimal worker
	// count, its predicted time(-to-accuracy), iterations and cost, the
	// full curve, and frontier membership.
	Plan = planner.Plan
	// PlanPoint is one sampled configuration of a plan.
	PlanPoint = planner.Point
	// PlanReport is a ranked set of plans for one suite.
	PlanReport = planner.Report
	// PlanObjective selects how a report ranks its plans: "tta", "cost"
	// or "pareto".
	PlanObjective = planner.Objective
	// PlanOptions selects the planner's adaptive behaviors — bound-based
	// pruning, frontier refinement, cost/time budgets; the zero value is
	// the exhaustive pass.
	PlanOptions = planner.Options
)

// GradientDescent builds the paper's strong-scaling gradient-descent model
// t(n) = C·S/(F·n) + t_cm(W bits, n) on the given hardware and protocol.
func GradientDescent(w Workload, node Node, protocol CommModel) (Model, error) {
	return gd.Model(w, node, protocol)
}

// GradientDescentWeak builds the paper's weak-scaling model (per-instance
// time with a fixed per-worker batch), the Fig. 3 setting.
func GradientDescentWeak(w Workload, node Node, protocol CommModel) (Model, error) {
	return gd.WeakScalingModel(w, node, protocol)
}

// GraphInference builds the paper's graphical-model inference model
// (§IV-B): computation proportional to the Monte-Carlo estimate of the
// maximum per-worker edge count for the given degree sequence, with zero
// communication (shared memory). opsPerEdge is c(S), e.g. bp.OpsPerEdge.
// Degenerate inputs (empty degrees, non-positive ops, flops or trials)
// return an error instead of silently producing infinite speedups. The
// per-worker-count estimates come from the process-wide kernel cache
// (SnapshotCaches shows it), so identical estimates are computed exactly
// once across all model instances and concurrent suite workers; calling
// Time with a worker count below 1 panics with the estimator's error
// rather than pricing the point at +Inf. The degrees slice is keyed into
// that cache by its contents at construction time and read again at each
// evaluation, so it must not be mutated after this call.
func GraphInference(name string, degrees []int32, opsPerEdge float64, f Flops, trials int, seed int64) (Model, error) {
	return registry.GraphInferenceModel(name, degrees, opsPerEdge, f, trials, seed)
}

// Hardware catalog (the paper's testbeds).

// XeonE31240 is the Spark-cluster CPU (§V-A).
func XeonE31240() Node { return hardware.XeonE31240() }

// NvidiaK40 is the GPU of the Chen et al. cluster (§V-A).
func NvidiaK40() Node { return hardware.NvidiaK40() }

// GigabitEthernet is the 1 Gbit/s cluster network.
func GigabitEthernet() Network { return hardware.GigabitEthernet() }

// Communication protocols.

// LinearComm is the master-worker sequential exchange: t = n·payload/B.
func LinearComm(b BitsPerSecond) CommModel { return comm.Linear{Bandwidth: b} }

// TreeComm is a binomial-tree broadcast/reduction: t = log2(n)·payload/B.
func TreeComm(b BitsPerSecond) CommModel { return comm.Tree{Bandwidth: b} }

// TwoStageTreeComm is the paper's generic gradient-descent communication:
// 2·log2(n)·payload/B.
func TwoStageTreeComm(b BitsPerSecond) CommModel { return comm.TwoStageTree{Bandwidth: b} }

// SparkComm is Spark's torrent broadcast plus two-wave sqrt aggregation
// over 1 Gbit/s Ethernet, the Fig. 2 protocol.
func SparkComm() CommModel { return comm.SparkGradient(units.Gbps) }

// SparkCommOn is SparkComm at a custom bandwidth.
func SparkCommOn(b BitsPerSecond) CommModel { return comm.SparkGradient(b) }

// RingAllReduceComm is the bandwidth-optimal ring all-reduce.
func RingAllReduceComm(b BitsPerSecond) CommModel { return comm.RingAllReduce{Bandwidth: b} }

// PipelinedTreeComm is a chunked, pipelined tree broadcast that approaches
// a single payload transfer as chunks grow.
func PipelinedTreeComm(b BitsPerSecond, chunks int) CommModel {
	return comm.PipelinedTree{Bandwidth: b, Chunks: chunks}
}

// SharedMemoryComm models free in-machine communication.
func SharedMemoryComm() CommModel { return comm.SharedMemory{} }

// Protocol builds a cataloged or composed protocol by name — the registry
// path scenario files use. kind is one of ProtocolKinds.
func Protocol(kind string, b BitsPerSecond) (CommModel, error) {
	return registry.Protocol(registry.ProtocolSpec{Kind: kind, BandwidthBitsPerSec: float64(b)})
}

// Registry catalogs: the names scenario files, CLIs and Protocol accept.

// ProtocolKinds lists the registered protocol kinds.
func ProtocolKinds() []string { return registry.ProtocolKinds() }

// HardwarePresets lists the cataloged hardware node names.
func HardwarePresets() []string { return registry.NodePresets() }

// WorkloadFamilies lists the canonical workload-family names.
func WorkloadFamilies() []string { return registry.Families() }

// Architectures lists the cataloged network architectures.
func Architectures() []string { return registry.Architectures() }

// GraphFamilies lists the synthetic graph families.
func GraphFamilies() []string { return registry.GraphFamilies() }

// Scenarios and suites.

// LoadScenario reads a single-scenario JSON file.
func LoadScenario(path string) (Scenario, error) { return scenario.Load(path) }

// LoadSuite reads a suite (or single-scenario) JSON file.
func LoadSuite(path string) (Suite, error) { return scenario.LoadSuite(path) }

// EvaluateSuite expands a suite and computes every speedup curve
// concurrently. Workers come from the shared parallelism budget (default
// GOMAXPROCS; size it with SetParallelism), which suite-level curve workers
// and intra-curve Monte-Carlo shards split between them; the parallelism
// argument only caps the suite-level workers within that budget (≤ 0 means
// no extra cap — it cannot raise concurrency above the budget). A failing
// scenario yields a SuiteResult with Err set; the rest of the suite still
// evaluates. Cells that describe the same model under different labels are
// evaluated once and fanned out (SuiteResult.Deduped), and Monte-Carlo
// kernel estimates are cached process-wide, so a grid that varies only
// communication-side axes pays for each distinct computation kernel exactly
// once; results are bit-identical with the caches cold or warm.
func EvaluateSuite(s Suite, parallelism int) ([]SuiteResult, error) {
	return scenario.EvaluateSuite(s, parallelism)
}

// EvaluateSuiteStats is EvaluateSuite plus the pass's evaluation stats:
// cells evaluated versus deduped and the build-versus-sample wall-time
// split. Pair it with SnapshotCaches to see the kernel-cache hit ratio.
func EvaluateSuiteStats(s Suite, parallelism int) ([]SuiteResult, EvalStats, error) {
	return scenario.EvaluateSuiteStats(s, parallelism)
}

// EvaluateSuiteCtx is EvaluateSuiteStats under a context, so a sweep can be
// deadlined or aborted mid-grid: cancellation stops new model work
// promptly — including Monte-Carlo kernels mid-estimate — and yields
// deterministic partial results, one SuiteResult per cell, where cells
// evaluated before ctx fired are bit-identical to an uncancelled run's and
// the rest carry an error wrapping ctx.Err() (counted in
// EvalStats.Cancelled). No goroutines or parallelism-budget slots outlive
// the call. The returned error is ctx's own when the run was cut short.
func EvaluateSuiteCtx(ctx context.Context, s Suite, parallelism int) ([]SuiteResult, EvalStats, error) {
	return scenario.EvaluateSuiteStatsCtx(ctx, s, parallelism)
}

// PlanSuite expands a suite and plans every scenario concurrently: each
// cell's per-iteration model composes with its convergence block into a
// time-to-accuracy curve, the planner finds the optimal worker count, prices
// the run with the node's hourly cost rate, marks the suite's cost×time
// Pareto frontier and ranks the cells by the objective ("" defers to the
// suite's own objective field, else "tta"). Scenarios without a convergence
// block degrade to per-iteration ranking with a notice; failures isolate
// per cell. Output is deterministic at any parallelism.
func PlanSuite(s Suite, objective PlanObjective, parallelism int) (PlanReport, error) {
	return planner.PlanSuite(s, objective, parallelism)
}

// PlanSuiteAdaptive is PlanSuite with adaptive options and evaluation
// statistics: bound-based pruning against an incremental Pareto frontier
// (the evaluated frontier is provably identical to the exhaustive run's),
// multi-axis refinement of the numeric sweep axes next to frontier cells,
// and cost/time budget constraints. The zero PlanOptions reproduces
// PlanSuite exactly.
func PlanSuiteAdaptive(s Suite, objective PlanObjective, parallelism int, opts PlanOptions) (PlanReport, EvalStats, error) {
	return planner.PlanSuiteOpts(s, objective, parallelism, opts)
}

// PlanSuiteCtx is PlanSuiteAdaptive under a context, so a planning pass can
// be deadlined or aborted mid-grid: cells planned before ctx fired are
// bit-identical to an uncancelled run's, the rest carry an error wrapping
// ctx.Err() (EvalStats.Cancelled), and the returned error is ctx's own when
// the run was cut short. No goroutines or budget slots outlive the call.
func PlanSuiteCtx(ctx context.Context, s Suite, objective PlanObjective, parallelism int, opts PlanOptions) (PlanReport, EvalStats, error) {
	return planner.PlanSuiteCtx(ctx, s, objective, parallelism, opts)
}

// PlanScenario plans a single scenario; see PlanSuite.
func PlanScenario(s Scenario) (Plan, error) { return planner.PlanScenario(s) }

// ConvergenceRules lists the cataloged batch-to-iterations rule names a
// convergence block may name.
func ConvergenceRules() []string { return registry.ConvergenceRules() }

// PlanObjectives lists the ranking objectives a suite or PlanSuite call may
// name.
func PlanObjectives() []string { return scenario.Objectives() }

// Cache observability: the process-wide caches behind model construction.
type (
	// MemoStats is one cache's hit/miss/eviction/entry counters.
	MemoStats = memo.Stats
	// CacheStats snapshots every process-wide registry cache: generated
	// degree sequences, materialized graphs and Monte-Carlo maxᵢEᵢ kernel
	// estimates.
	CacheStats = registry.CacheStats
	// EvalStats summarizes one EvaluateSuiteStats pass: cells evaluated
	// versus deduped and the build-versus-sample wall-time split.
	EvalStats = scenario.EvalStats
)

// SnapshotCaches returns the current counters of the process-wide caches.
// The Estimates layer is the computation kernel: its misses count the
// Monte-Carlo estimations actually performed since the last ResetCaches.
func SnapshotCaches() CacheStats { return registry.SnapshotCaches() }

// ResetCaches empties every process-wide cache (degree sequences, graphs,
// Monte-Carlo estimates) and zeroes its counters, so benchmarks and tests
// measure a fully cold state. Evaluation never needs it.
func ResetCaches() { registry.ResetCaches() }

// SetParallelism sizes the shared parallelism budget that suite-level curve
// workers and intra-curve Monte-Carlo shards draw from (≤ 0 means
// GOMAXPROCS). Evaluation is deterministic at any setting; call it before
// evaluating, not concurrently with it.
func SetParallelism(limit int) { core.SetParallelism(limit) }

// Parallelism returns the shared budget's total worker limit.
func Parallelism() int { return core.Parallelism() }

// Workers is a convenience for the worker counts lo..hi.
func Workers(lo, hi int) []int { return core.Range(lo, hi) }

// Experiments exposes the paper-reproduction harness.

// ExperimentIDs lists the reproducible paper artifacts.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table or figure.
func RunExperiment(id string) (experiments.Result, error) {
	return experiments.Run(id, experiments.DefaultOptions())
}
