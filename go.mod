module dmlscale

go 1.24
