// Command dmls-speedup is the paper's back-of-the-envelope calculator: given
// an algorithm's complexity figures and the hardware spec, it prints the
// speedup curve, the communication/computation crossover and the optimal
// worker count.
//
// Flags assemble a scenario and hand it to the registry-driven engine — the
// same path JSON scenario files and the experiment harness use. A -config
// file replaces the flags entirely; for whole suites and parameter sweeps
// see dmls-sweep.
//
// Example (the paper's Fig. 2 workload):
//
//	dmls-speedup -flops-per-example 72e6 -batch 60000 -params 12e6 \
//	  -precision 64 -peak-flops 105.6e9 -efficiency 0.8 \
//	  -bandwidth 1e9 -protocol spark -max 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmlscale/internal/asciiplot"
	"dmlscale/internal/core"
	"dmlscale/internal/registry"
	"dmlscale/internal/scenario"
	"dmlscale/internal/textio"
)

func main() {
	var (
		configPath      = flag.String("config", "", "JSON scenario file (overrides the other flags)")
		emitConfig      = flag.Bool("emit-config", false, "print the paper's Fig. 2 setup as a scenario file and exit")
		family          = flag.String("family", "gd-strong", "workload family: "+strings.Join(registry.Families(), ", "))
		flopsPerExample = flag.Float64("flops-per-example", 6*12e6, "C: training flops per example")
		batch           = flag.Float64("batch", 60000, "S: batch size")
		params          = flag.Float64("params", 12e6, "W: model parameter count")
		precision       = flag.Float64("precision", 64, "bits per shipped parameter")
		architecture    = flag.String("architecture", "", "derive C and W from a cataloged network: "+strings.Join(registry.Architectures(), ", "))
		hwPreset        = flag.String("hardware", "", "hardware preset ("+strings.Join(registry.NodePresets(), ", ")+"); overrides -peak-flops")
		peakFlops       = flag.Float64("peak-flops", 105.6e9, "node peak flops")
		efficiency      = flag.Float64("efficiency", 0.8, "achievable fraction of peak")
		bandwidth       = flag.Float64("bandwidth", 1e9, "network bandwidth, bit/s")
		protocol        = flag.String("protocol", "spark", "communication protocol: "+strings.Join(registry.LeafProtocolKinds(), ", ")+" (composed protocols need -config)")
		maxN            = flag.Int("max", 16, "largest worker count to evaluate")
		weak            = flag.Bool("weak", false, "weak scaling: shorthand for -family gd-weak")
		parallelism     = flag.Int("parallel", 0, "parallelism budget for curve sampling and Monte-Carlo trials; 0 means GOMAXPROCS, 1 forces serial")
	)
	flag.Parse()
	if *parallelism > 0 {
		core.SetParallelism(*parallelism)
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dmls-speedup: %v\n", err)
		os.Exit(1)
	}

	if *emitConfig {
		if err := scenario.Fig2().Encode(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	var sc scenario.Scenario
	if *configPath != "" {
		var err error
		sc, err = scenario.Load(*configPath)
		if err != nil {
			fail(err)
		}
		if sc.MaxWorkers > 0 {
			*maxN = sc.MaxWorkers
		}
		fmt.Printf("scenario: %s\n\n", sc.Name)
	} else {
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if *weak {
			if explicit["family"] && *family != "gd-weak" && *family != "weak" {
				fail(fmt.Errorf("-weak conflicts with -family %s", *family))
			}
			*family = "gd-weak"
		}
		sc = scenario.Scenario{
			Name: "workload",
			Workload: scenario.WorkloadSpec{
				Family:          *family,
				Architecture:    *architecture,
				FlopsPerExample: *flopsPerExample,
				BatchSize:       *batch,
				Parameters:      *params,
				PrecisionBits:   *precision,
			},
			Hardware:   scenario.HardwareSpec{Preset: *hwPreset, PeakFlops: *peakFlops, Efficiency: *efficiency, Name: "custom node"},
			Protocol:   scenario.ProtocolSpec{Kind: *protocol, BandwidthBitsPerSec: *bandwidth},
			MaxWorkers: *maxN,
		}
		if *architecture != "" {
			// Let the catalog fill the counted figures — but only where
			// the user didn't pass an explicit value; the flag defaults
			// are placeholders, explicit flags win over the catalog.
			if !explicit["flops-per-example"] {
				sc.Workload.FlopsPerExample = 0
			}
			if !explicit["params"] {
				sc.Workload.Parameters = 0
			}
		}
	}

	model, err := sc.Model()
	if err != nil {
		fail(err)
	}

	workers := core.Range(1, *maxN)
	curve, err := model.SpeedupCurve(workers)
	if err != nil {
		fail(err)
	}
	table := textio.NewTable("workers", "t_cp (s)", "t_cm (s)", "t (s)", "speedup", "efficiency")
	for _, pt := range curve.Points {
		commTime := 0.0
		if model.Communication != nil {
			commTime = float64(model.Communication(pt.N))
		}
		table.AddRow(pt.N,
			float64(model.Computation(pt.N)),
			commTime,
			float64(pt.Time), pt.Speedup, pt.Speedup/float64(pt.N))
	}
	fmt.Println(table.String())

	plot, err := asciiplot.CurvePlot("speedup", []string{model.Name},
		[][]int{workers}, [][]float64{curve.Speedups()}, 60, 14)
	if err == nil {
		fmt.Println(plot)
	}

	optN, optS, err := model.OptimalWorkers(*maxN)
	if err != nil {
		fail(err)
	}
	fmt.Printf("optimal workers: %d (speedup %.2f)\n", optN, optS)
	if n, ok := model.CommComputeCrossover(*maxN); ok {
		fmt.Printf("communication exceeds computation from %d workers\n", n)
	} else {
		fmt.Printf("computation dominates through %d workers\n", *maxN)
	}
	scalable, err := model.IsScalable(*maxN)
	if err != nil {
		fail(err)
	}
	fmt.Printf("scalable (s(k) > 1 for some k ≤ %d): %v\n", *maxN, scalable)
}
