// Command dmls-speedup is the paper's back-of-the-envelope calculator: given
// an algorithm's complexity figures and the hardware spec, it prints the
// speedup curve, the communication/computation crossover and the optimal
// worker count.
//
// Example (the paper's Fig. 2 workload):
//
//	dmls-speedup -flops-per-example 72e6 -batch 60000 -params 12e6 \
//	  -precision 64 -peak-flops 105.6e9 -efficiency 0.8 \
//	  -bandwidth 1e9 -protocol spark -max 16
package main

import (
	"flag"
	"fmt"
	"os"

	"dmlscale/internal/asciiplot"
	"dmlscale/internal/comm"
	"dmlscale/internal/core"
	"dmlscale/internal/gd"
	"dmlscale/internal/hardware"
	"dmlscale/internal/scenario"
	"dmlscale/internal/textio"
	"dmlscale/internal/units"
)

func protocolFor(name string, b units.BitsPerSecond) (comm.Model, error) {
	switch name {
	case "linear":
		return comm.Linear{Bandwidth: b}, nil
	case "tree":
		return comm.Tree{Bandwidth: b}, nil
	case "two-stage-tree":
		return comm.TwoStageTree{Bandwidth: b}, nil
	case "spark":
		return comm.SparkGradient(b), nil
	case "ring":
		return comm.RingAllReduce{Bandwidth: b}, nil
	case "shuffle":
		return comm.Shuffle{Bandwidth: b}, nil
	case "none", "shared-memory":
		return comm.SharedMemory{}, nil
	}
	return nil, fmt.Errorf("unknown protocol %q (linear, tree, two-stage-tree, spark, ring, shuffle, none)", name)
}

func main() {
	var (
		configPath      = flag.String("config", "", "JSON scenario file (overrides the other flags)")
		emitConfig      = flag.Bool("emit-config", false, "print the paper's Fig. 2 setup as a scenario file and exit")
		flopsPerExample = flag.Float64("flops-per-example", 6*12e6, "C: training flops per example")
		batch           = flag.Float64("batch", 60000, "S: batch size")
		params          = flag.Float64("params", 12e6, "W: model parameter count")
		precision       = flag.Float64("precision", 64, "bits per shipped parameter")
		peakFlops       = flag.Float64("peak-flops", 105.6e9, "node peak flops")
		efficiency      = flag.Float64("efficiency", 0.8, "achievable fraction of peak")
		bandwidth       = flag.Float64("bandwidth", 1e9, "network bandwidth, bit/s")
		protocol        = flag.String("protocol", "spark", "communication protocol")
		maxN            = flag.Int("max", 16, "largest worker count to evaluate")
		weak            = flag.Bool("weak", false, "weak scaling: fixed per-worker batch, per-instance time")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dmls-speedup: %v\n", err)
		os.Exit(1)
	}

	if *emitConfig {
		if err := scenario.Fig2().Encode(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	var model core.Model
	if *configPath != "" {
		sc, err := scenario.Load(*configPath)
		if err != nil {
			fail(err)
		}
		model, err = sc.Model()
		if err != nil {
			fail(err)
		}
		if sc.MaxWorkers > 0 {
			*maxN = sc.MaxWorkers
		}
		fmt.Printf("scenario: %s\n\n", sc.Name)
	} else {
		p, err := protocolFor(*protocol, units.BitsPerSecond(*bandwidth))
		if err != nil {
			fail(err)
		}
		node := hardware.Node{
			Name:       "custom node",
			PeakFlops:  units.Flops(*peakFlops),
			Efficiency: *efficiency,
		}
		w := gd.Workload{
			Name:            "workload",
			FlopsPerExample: *flopsPerExample,
			BatchSize:       *batch,
			ModelBits:       units.Bits(*precision * *params),
		}
		if *weak {
			model, err = gd.WeakScalingModel(w, node, p)
		} else {
			model, err = gd.Model(w, node, p)
		}
		if err != nil {
			fail(err)
		}
	}

	workers := core.Range(1, *maxN)
	curve, err := model.SpeedupCurve(workers)
	if err != nil {
		fail(err)
	}
	table := textio.NewTable("workers", "t_cp (s)", "t_cm (s)", "t (s)", "speedup", "efficiency")
	for _, pt := range curve.Points {
		commTime := 0.0
		if model.Communication != nil {
			commTime = float64(model.Communication(pt.N))
		}
		table.AddRow(pt.N,
			float64(model.Computation(pt.N)),
			commTime,
			float64(pt.Time), pt.Speedup, pt.Speedup/float64(pt.N))
	}
	fmt.Println(table.String())

	plot, err := asciiplot.CurvePlot("speedup", []string{model.Name},
		[][]int{workers}, [][]float64{curve.Speedups()}, 60, 14)
	if err == nil {
		fmt.Println(plot)
	}

	optN, optS, err := model.OptimalWorkers(*maxN)
	if err != nil {
		fail(err)
	}
	fmt.Printf("optimal workers: %d (speedup %.2f)\n", optN, optS)
	if n, ok := model.CommComputeCrossover(*maxN); ok {
		fmt.Printf("communication exceeds computation from %d workers\n", n)
	} else {
		fmt.Printf("computation dominates through %d workers\n", *maxN)
	}
	scalable, err := model.IsScalable(*maxN)
	if err != nil {
		fail(err)
	}
	fmt.Printf("scalable (s(k) > 1 for some k ≤ %d): %v\n", *maxN, scalable)
}
