package main

import (
	"testing"

	"dmlscale/internal/registry"
	"dmlscale/internal/scenario"
)

// TestFlagScenarioBuildsThroughRegistry: the CLI's flag-assembled scenario
// resolves every protocol name through the one registry, including the
// "none" alias the flag interface documents.
func TestFlagScenarioBuildsThroughRegistry(t *testing.T) {
	known := []string{"linear", "tree", "two-stage-tree", "spark", "ring", "shuffle", "none", "shared-memory"}
	for _, name := range known {
		sc := scenario.Scenario{
			Name: "flags",
			Workload: scenario.WorkloadSpec{
				FlopsPerExample: 6 * 12e6,
				BatchSize:       60000,
				Parameters:      12e6,
				PrecisionBits:   64,
			},
			Hardware: scenario.HardwareSpec{PeakFlops: 105.6e9, Efficiency: 0.8},
			Protocol: scenario.ProtocolSpec{Kind: name, BandwidthBitsPerSec: 1e9},
		}
		model, err := sc.Model()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if model.Time(4) < 0 {
			t.Errorf("%s: negative time", name)
		}
	}
	sc := scenario.Scenario{Name: "bad", Protocol: scenario.ProtocolSpec{Kind: "warp"}}
	if _, err := sc.Model(); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestFamilyFlagValues: every family the -family flag advertises builds for
// a gradient-descent-shaped spec or fails with a clear error (graph
// families need -config).
func TestFamilyFlagValues(t *testing.T) {
	for _, family := range registry.Families() {
		sc := scenario.Scenario{
			Name: family,
			Workload: scenario.WorkloadSpec{
				Family:          family,
				FlopsPerExample: 1e9,
				BatchSize:       100,
				Parameters:      1e6,
			},
			Hardware: scenario.HardwareSpec{PeakFlops: 1e12, Efficiency: 0.5},
			Protocol: scenario.ProtocolSpec{Kind: "tree", BandwidthBitsPerSec: 1e9},
		}
		_, err := sc.Model()
		switch family {
		case "graph-inference", "mrf":
			if err == nil {
				t.Errorf("%s: flag-only scenario accepted without a graph spec", family)
			}
		default:
			if err != nil {
				t.Errorf("%s: %v", family, err)
			}
		}
	}
}
