package main

import (
	"testing"

	"dmlscale/internal/units"
)

func TestProtocolFor(t *testing.T) {
	known := []string{"linear", "tree", "two-stage-tree", "spark", "ring", "shuffle", "none", "shared-memory"}
	for _, name := range known {
		m, err := protocolFor(name, units.Gbps)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if m == nil || m.Time(1e6, 4) < 0 {
			t.Errorf("%s: bad model", name)
		}
	}
	if _, err := protocolFor("warp", units.Gbps); err == nil {
		t.Error("unknown protocol accepted")
	}
}
