package main

import (
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad integer accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
}
