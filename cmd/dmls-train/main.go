// Command dmls-train trains a real multi-layer perceptron on synthetic data
// with data-parallel gradient computation and compares the measured
// host-level speedup against the paper's compute-only prediction (shared
// memory ⇒ t_cm ≈ 0 ⇒ near-linear until cores saturate).
//
// Usage:
//
//	dmls-train [-examples N] [-features N] [-classes N] [-hidden widths]
//	           [-epochs N] [-workers list] [-lr rate]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dmlscale/internal/dataset"
	"dmlscale/internal/gd"
	"dmlscale/internal/nn"
	"dmlscale/internal/textio"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		examples = flag.Int("examples", 2048, "training examples")
		features = flag.Int("features", 64, "input features")
		classes  = flag.Int("classes", 4, "classes")
		hidden   = flag.String("hidden", "128,64", "hidden layer widths")
		epochs   = flag.Int("epochs", 10, "training epochs")
		workers  = flag.String("workers", "1,2,4,8", "comma-separated worker counts")
		lr       = flag.Float64("lr", 0.3, "learning rate")
		seed     = flag.Int64("seed", 11, "data and init seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dmls-train: %v\n", err)
		os.Exit(1)
	}

	hiddens, err := parseInts(*hidden)
	if err != nil {
		fail(err)
	}
	workerCounts, err := parseInts(*workers)
	if err != nil {
		fail(err)
	}
	data, err := dataset.GaussianBlobs(*examples, *features, *classes, 0.2, *seed)
	if err != nil {
		fail(err)
	}

	widths := append(append([]int{*features}, hiddens...), *classes)
	build := func() *nn.Network {
		net, err := nn.NewMLP(widths, func() nn.Layer { return &nn.Tanh{} },
			nn.SoftmaxCrossEntropy{}, *seed)
		if err != nil {
			fail(err)
		}
		return net
	}
	reference := build()
	fmt.Printf("network %v: %d parameters, %d examples\n\n", widths, reference.WeightCount(), data.Len())

	table := textio.NewTable("workers", "final loss", "accuracy", "wall time", "measured speedup")
	var base time.Duration
	for _, n := range workerCounts {
		net := build()
		if err := net.CopyParamsFrom(reference); err != nil {
			fail(err)
		}
		start := time.Now()
		res, err := gd.Train(net, data, &gd.SGD{LearningRate: *lr},
			gd.TrainOptions{Epochs: *epochs, Workers: n})
		if err != nil {
			fail(err)
		}
		elapsed := time.Since(start)
		if base == 0 {
			base = elapsed
		}
		table.AddRow(n, res.FinalLoss, net.Accuracy(data.X, data.Labels),
			elapsed.Round(time.Millisecond).String(),
			float64(base)/float64(elapsed))
	}
	fmt.Println(table.String())
	fmt.Println("paper model: shared-memory training communicates for free, so speedup tracks")
	fmt.Println("t_cp(1)/t_cp(n) = n until memory bandwidth or core count saturates.")
}
