// Command dmls-netcost prints the per-layer weight and computation
// breakdown of a neural-network architecture — the tooling behind the
// paper's Table I.
//
// Usage:
//
//	dmls-netcost [-network name] [-layers]
//
// Architectures come from the registry catalog (fc-mnist, inception-v3,
// lenet-5, alexnet, vgg-16); the same names work in scenario files via the
// workload "architecture" field.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmlscale/internal/registry"
	"dmlscale/internal/textio"
)

func main() {
	var (
		network = flag.String("network", "fc-mnist", "architecture: "+strings.Join(registry.Architectures(), ", "))
		layers  = flag.Bool("layers", false, "print the per-layer breakdown")
	)
	flag.Parse()

	net, err := registry.Architecture(*network)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmls-netcost: %v\n", err)
		os.Exit(1)
	}
	summary, err := net.Summarize()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmls-netcost: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s  (input %v → output %v)\n\n", summary.Name, summary.Input, summary.Output)
	if *layers {
		table := textio.NewTable("layer", "output", "weights", "multiply-adds")
		for _, l := range summary.Layers {
			table.AddRow(l.Label, l.Out.String(), l.Weights, l.MultiplyAdds)
		}
		fmt.Println(table.String())
	}
	totals := textio.NewTable("quantity", "value")
	totals.AddRow("parameters (W)", summary.Weights)
	totals.AddRow("forward multiply-adds", summary.MultiplyAdds)
	totals.AddRow("forward flops (2·MA)", summary.ForwardFlops())
	totals.AddRow("training flops per example (3 passes)", summary.TrainingFlops())
	fmt.Println(totals.String())
}
