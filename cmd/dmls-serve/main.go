// Command dmls-serve runs the planning service: the sweep and planning
// engines behind a hardened HTTP/JSON API, so deployment tooling can ask
// "how many machines?" with a curl instead of a binary.
//
// Usage:
//
//	dmls-serve -addr :8080
//	dmls-serve -addr :8080 -max-inflight 4 -deadline 20s -max-cells 2048
//
// Endpoints:
//
//	POST /v1/sweep   {"suite": {...}}                 → dmls-sweep -format json output
//	POST /v1/plan    {"suite": {...}, "adaptive": true} → dmls-plan -format json output
//	GET  /healthz    liveness: "ok", or 503 "draining" during shutdown
//	GET  /metrics    Prometheus text exposition (counters, per-route latency
//	                 histograms, cache gauges); legacy JSON snapshot under
//	                 Accept: application/json
//
// Observability: every request carries a W3C traceparent (an incoming one
// is honored, otherwise a trace id is minted) echoed on the response;
// -access-log emits one structured JSON line per evaluation request with
// the phase breakdown; -debug-addr serves net/http/pprof on a separate
// listener so profiling is never exposed on the service address.
//
// A /v1/plan response is byte-identical to running dmls-plan -format json
// over the same suite with the same knobs. Requests past -max-inflight are
// shed immediately with 429 and Retry-After; each request evaluates under
// its own deadline (request "deadline" field, clamped to -max-deadline,
// default -deadline) threaded through the whole engine, so an expired or
// abandoned request frees its parallelism budget instead of wedging the
// server. SIGINT/SIGTERM starts a graceful drain: in-flight requests get
// -drain-timeout to finish before their contexts are cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmlscale/internal/core"
	"dmlscale/internal/registry"
	"dmlscale/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run wires flags, signals and the server lifecycle; split from main for
// testability.
func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("dmls-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		deadline     = fs.Duration("deadline", 30*time.Second, "default per-request evaluation deadline")
		maxDeadline  = fs.Duration("max-deadline", 2*time.Minute, "upper clamp on client-requested deadlines")
		maxInFlight  = fs.Int("max-inflight", 8, "max concurrently evaluating requests; excess sheds with 429")
		maxCells     = fs.Int("max-cells", 4096, "largest suite grid a request may expand to")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "grace for in-flight requests on SIGTERM before their contexts are cancelled")
		parallelism  = fs.Int("parallel", 0, "process-wide parallelism budget; 0 means GOMAXPROCS")
		debugAddr    = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060); empty disables profiling")
		accessLog    = fs.String("access-log", "", "append structured JSON access-log lines to this file; \"-\" means stderr, empty disables")

		breakerWindow  = fs.Int("breaker-window", 20, "request outcomes in the kernel circuit breaker's rolling window")
		breakerMin     = fs.Int("breaker-min-samples", 5, "minimum outcomes in the window before the breaker may trip")
		breakerRatio   = fs.Float64("breaker-failure-ratio", 0.5, "failure ratio that opens the breaker (plans degrade to bound estimates, sweeps shed 503)")
		breakerOpenFor = fs.Duration("breaker-open-for", 15*time.Second, "how long an open breaker waits before admitting a half-open probe")
		chaosKernel    = fs.Int("chaos-kernel-errors", 0, "UNSAFE drill knob: fail the first N attempts of every kernel computation with a transient fault, for breaker and retry exercises")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallelism > 0 {
		core.SetParallelism(*parallelism)
	}

	var logW io.Writer
	switch *accessLog {
	case "":
	case "-":
		logW = stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "dmls-serve: open access log: %v\n", err)
			return 1
		}
		defer f.Close()
		logW = f
	}

	srv := serve.New(serve.Config{
		Addr:            *addr,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxInFlight:     *maxInFlight,
		MaxCells:        *maxCells,
		DrainTimeout:    *drainTimeout,
		AccessLog:       logW,
		Breaker: serve.BreakerConfig{
			Window:       *breakerWindow,
			MinSamples:   *breakerMin,
			FailureRatio: *breakerRatio,
			OpenFor:      *breakerOpenFor,
		},
	})

	if n := *chaosKernel; n > 0 {
		// Chaos drill: every kernel coordinate fails its first n attempts
		// with a transient fault. With n within the retry policy's attempts
		// the service absorbs the faults (retries, no user-visible errors);
		// past it, failures surface, the breakers trip and the degraded
		// path serves — the loadtest script uses exactly this to rehearse
		// trip-and-recover.
		fmt.Fprintf(stderr, "dmls-serve: CHAOS: failing the first %d attempts of every kernel computation\n", n)
		registry.SetKernelFault(func(c registry.KernelCall) registry.KernelFault {
			if c.Attempt < n {
				return registry.KernelFault{
					Err:       fmt.Errorf("chaos: injected transient kernel fault (attempt %d of %d)", c.Attempt+1, n),
					Transient: true,
				}
			}
			return registry.KernelFault{}
		})
		defer registry.SetKernelFault(nil)
	}

	if *debugAddr != "" {
		// Profiling lives on its own listener so it is never exposed on the
		// service address: the debug mux carries pprof and nothing else.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(stderr, "dmls-serve: pprof on %s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				fmt.Fprintf(stderr, "dmls-serve: pprof listener: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(stderr, "dmls-serve: listening on %s\n", *addr)
	if err := srv.Run(ctx); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "dmls-serve: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "dmls-serve: drained, bye")
	return 0
}
