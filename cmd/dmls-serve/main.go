// Command dmls-serve runs the planning service: the sweep and planning
// engines behind a hardened HTTP/JSON API, so deployment tooling can ask
// "how many machines?" with a curl instead of a binary.
//
// Usage:
//
//	dmls-serve -addr :8080
//	dmls-serve -addr :8080 -max-inflight 4 -deadline 20s -max-cells 2048
//
// Endpoints:
//
//	POST /v1/sweep   {"suite": {...}}                 → dmls-sweep -format json output
//	POST /v1/plan    {"suite": {...}, "adaptive": true} → dmls-plan -format json output
//	GET  /healthz    liveness: "ok", or 503 "draining" during shutdown
//	GET  /metrics    request counters + kernel-cache stats, JSON
//
// A /v1/plan response is byte-identical to running dmls-plan -format json
// over the same suite with the same knobs. Requests past -max-inflight are
// shed immediately with 429 and Retry-After; each request evaluates under
// its own deadline (request "deadline" field, clamped to -max-deadline,
// default -deadline) threaded through the whole engine, so an expired or
// abandoned request frees its parallelism budget instead of wedging the
// server. SIGINT/SIGTERM starts a graceful drain: in-flight requests get
// -drain-timeout to finish before their contexts are cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmlscale/internal/core"
	"dmlscale/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run wires flags, signals and the server lifecycle; split from main for
// testability.
func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("dmls-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		deadline     = fs.Duration("deadline", 30*time.Second, "default per-request evaluation deadline")
		maxDeadline  = fs.Duration("max-deadline", 2*time.Minute, "upper clamp on client-requested deadlines")
		maxInFlight  = fs.Int("max-inflight", 8, "max concurrently evaluating requests; excess sheds with 429")
		maxCells     = fs.Int("max-cells", 4096, "largest suite grid a request may expand to")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "grace for in-flight requests on SIGTERM before their contexts are cancelled")
		parallelism  = fs.Int("parallel", 0, "process-wide parallelism budget; 0 means GOMAXPROCS")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallelism > 0 {
		core.SetParallelism(*parallelism)
	}

	srv := serve.New(serve.Config{
		Addr:            *addr,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxInFlight:     *maxInFlight,
		MaxCells:        *maxCells,
		DrainTimeout:    *drainTimeout,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(stderr, "dmls-serve: listening on %s\n", *addr)
	if err := srv.Run(ctx); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "dmls-serve: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "dmls-serve: drained, bye")
	return 0
}
