package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// graphScenario exercises the Monte-Carlo kernel so the trace carries
// suite→cell→kernel nesting, not just closed-form cells.
const graphScenario = `{"name": "gi", "workload": {"family": "graph-inference",
  "graph": {"family": "grid", "vertices": 2000, "seed": 7}, "ops_per_edge": 10, "trials": 2},
  "hardware": {"preset": "dl980-core"}, "protocol": {"kind": "shared-memory"}, "max_workers": 8}`

// chromeEvent is the slice of the Chrome trace event format the test cares
// about.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// TestTraceFlagWritesChromeTrace: dmls-plan -adaptive -trace writes a
// Chrome/Perfetto-loadable file whose spans nest suite→cell→kernel.
func TestTraceFlagWritesChromeTrace(t *testing.T) {
	suite := writeSuite(t, goodScenario, graphScenario)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	if got := run(context.Background(), []string{"-suite", suite, "-adaptive", "-trace", tracePath}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit code %d\nstderr: %s", got, stderr.String())
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	byName := map[string][]chromeEvent{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	if len(byName["suite"]) != 1 {
		t.Fatalf("want exactly 1 suite span, got %d", len(byName["suite"]))
	}
	if len(byName["cell"]) == 0 || len(byName["kernel"]) == 0 {
		t.Fatalf("trace missing cell/kernel spans: %v", keys(byName))
	}
	// Nesting: every cell lies within the suite span, and every kernel
	// within some cell span.
	within := func(inner, outer chromeEvent) bool {
		return inner.Ts >= outer.Ts && inner.Ts+inner.Dur <= outer.Ts+outer.Dur
	}
	su := byName["suite"][0]
	for _, c := range byName["cell"] {
		if !within(c, su) {
			t.Fatalf("cell span [%v,%v] outside suite [%v,%v]", c.Ts, c.Ts+c.Dur, su.Ts, su.Ts+su.Dur)
		}
	}
	for _, k := range byName["kernel"] {
		nested := false
		for _, c := range byName["cell"] {
			if within(k, c) {
				nested = true
				break
			}
		}
		if !nested {
			t.Fatalf("kernel span at ts=%v not nested in any cell", k.Ts)
		}
	}
	if !strings.Contains(stderr.String(), "wrote") {
		t.Fatalf("no trace confirmation on stderr: %s", stderr.String())
	}
}

func keys(m map[string][]chromeEvent) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
