package main

import (
	"strings"
	"testing"
	"time"

	"dmlscale/internal/planner"
	"dmlscale/internal/registry"
	"dmlscale/internal/scenario"
)

func TestExampleSuitePlans(t *testing.T) {
	suite := exampleSuite()
	scenarios, err := suite.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 6 {
		t.Fatalf("example suite expands to %d scenarios, want 6", len(scenarios))
	}
	report, err := planner.PlanSuite(suite, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if report.Objective != planner.ObjectivePareto {
		t.Errorf("objective = %q, want the suite's pareto", report.Objective)
	}
	for _, p := range report.Plans {
		if p.Err != nil {
			t.Errorf("%s: %v", p.Scenario.Name, p.Err)
			continue
		}
		if !p.ConvergenceAware || p.Optimal.Workers < 1 || p.Optimal.Cost <= 0 {
			t.Errorf("%s: weak plan %+v", p.Scenario.Name, p.Optimal)
		}
	}
	rendered := planTable(report).String()
	if !strings.Contains(rendered, "ok") || !strings.Contains(rendered, "*") {
		t.Errorf("table missing ok rows or frontier markers:\n%s", rendered)
	}
}

func TestStatsReport(t *testing.T) {
	st := scenario.EvalStats{Scenarios: 6, Evaluated: 3, Pruned: 2, Failed: 1, Refined: 4, RefineRounds: 2}
	rendered := statsReport(st, registry.SnapshotCaches(), 3*time.Millisecond)
	for _, want := range []string{"6 cells planned", "3 evaluated", "2 pruned", "1 failed",
		"refinement added 4 cells over 2 rounds", "hit ratio", "kernel cache", "graph caches"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("stats report missing %q:\n%s", want, rendered)
		}
	}
}

func TestPlanTableReportsErrorsAndNotices(t *testing.T) {
	good := exampleSuite().Sweep.Base
	good.Name = "good"
	bad := good
	bad.Name = "bad"
	bad.Hardware = scenario.HardwareSpec{Preset: "abacus"}
	fallback := good
	fallback.Name = "fallback"
	fallback.Convergence = nil
	report, err := planner.PlanSuite(scenario.Suite{
		Name:      "mixed",
		Scenarios: []scenario.Scenario{good, bad, fallback},
	}, planner.ObjectiveTTA, 2)
	if err != nil {
		t.Fatal(err)
	}
	rendered := planTable(report).String()
	if !strings.Contains(rendered, "abacus") {
		t.Errorf("error row missing from table:\n%s", rendered)
	}
	if !strings.Contains(rendered, "per-iteration") {
		t.Errorf("fallback row missing its status:\n%s", rendered)
	}
	lines := notices(report)
	if len(lines) != 1 || !strings.Contains(lines[0], "no convergence block") {
		t.Errorf("notices = %v", lines)
	}
}
