package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodScenario = `{"name": "ok", "workload": {"flops_per_example": 1e6, "batch_size": 10, "parameters": 100},
  "hardware": {"preset": "xeon-e3-1240"}, "protocol": {"kind": "tree", "bandwidth_bits_per_sec": 1e9},
  "convergence": {"rule": "sqrt", "base_iterations": 100}, "max_workers": 8}`

const brokenScenario = `{"name": "broken", "protocol": {"kind": "warp"}}`

func writeSuite(t *testing.T, scenarios ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "suite.json")
	doc := `{"name": "exit-code suite", "scenarios": [` + strings.Join(scenarios, ",") + `]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodes is the regression test for the historical bug: partial
// failures exited 0 and scripts consumed rankings with silently missing
// plans.
func TestExitCodes(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name      string
		scenarios []string
		args      []string
		want      int
	}{
		{"all ok", []string{goodScenario}, nil, 0},
		{"partial failure", []string{goodScenario, brokenScenario}, nil, 1},
		{"partial failure keep-going", []string{goodScenario, brokenScenario}, []string{"-keep-going"}, 0},
		{"all failed", []string{brokenScenario}, nil, 1},
		{"all failed keep-going", []string{brokenScenario}, []string{"-keep-going"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			suite := writeSuite(t, tc.scenarios...)
			var stdout, stderr bytes.Buffer
			args := append([]string{"-suite", suite}, tc.args...)
			if got := run(ctx, args, &stdout, &stderr); got != tc.want {
				t.Fatalf("exit code %d, want %d\nstdout: %s\nstderr: %s", got, tc.want, stdout.String(), stderr.String())
			}
			if len(tc.scenarios) > 1 && !strings.Contains(stdout.String(), "broken") {
				t.Fatalf("failed scenario missing from output:\n%s", stdout.String())
			}
		})
	}
}

// TestInterruptFlushesPartialStats: a cancelled planning pass must still
// render what it has, flush -stats, and exit 130.
func TestInterruptFlushesPartialStats(t *testing.T) {
	suite := writeSuite(t, goodScenario)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	got := run(ctx, []string{"-suite", suite, "-stats"}, &stdout, &stderr)
	if got != 130 {
		t.Fatalf("exit code %d, want 130\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stats:") {
		t.Fatalf("-stats not flushed on interrupt:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("no interruption notice:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "cancelled") {
		t.Fatalf("cancelled cell missing from output:\n%s", stdout.String())
	}
}

func TestBadFlagsExit2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run(context.Background(), []string{"-definitely-not-a-flag"}, &stdout, &stderr); got != 2 {
		t.Fatalf("exit code %d, want 2", got)
	}
}
