// Command dmls-plan turns evaluated scenarios into recommendations: for a
// suite (or single scenario) it composes each cell's per-iteration model
// with its convergence block into a time-to-accuracy curve, finds the
// optimal worker count, prices the run with the node's hourly cost rate,
// marks the suite's cost×time Pareto frontier and prints the cells ranked by
// the chosen objective.
//
// Usage:
//
//	dmls-plan -suite examples/suites/plan-tta.json
//	dmls-plan -suite plan.json -objective cost
//	dmls-plan -suite plan.json -format csv > plan.csv
//	dmls-plan -suite plan.json -format json | jq .plans
//	dmls-plan -emit-example > plan.json
//
// The objective is tta (time-to-accuracy, default), cost, or pareto
// (frontier first); -objective overrides the suite file's own "objective"
// field. Scenarios without a convergence block rank by per-iteration time
// after every convergence-aware cell, each carrying a notice saying so.
// -parallel sizes the shared parallelism budget; rankings are deterministic
// and bit-identical at any setting. -stats reports the process-wide cache
// counters on stderr — planner probes price their models through the same
// Monte-Carlo kernel cache the sweeps use, so a grid over one graph shows a
// high hit ratio here too.
//
// Adaptive planning:
//
//	dmls-plan -suite big-grid.json -adaptive -stats
//	dmls-plan -suite big-grid.json -adaptive -refine 3
//	dmls-plan -suite plan.json -max-cost 25 -max-time 2h
//
// -adaptive streams the grid through an incremental Pareto frontier,
// skipping cells whose optimistic cost×time bound is already dominated —
// the frontier is provably identical to the exhaustive run's, only the
// dominated interior goes unevaluated (pruned cells still appear, ranked
// last, with their bound). -refine N re-subdivides the numeric sweep axes
// (bandwidth, worker bound) next to frontier cells for up to N rounds,
// planning off-grid configurations the declared grid stepped over. -max-cost
// and -max-time constrain recommendations to a budget: cells provably over
// it are pruned, evaluated plans pick the fastest configuration inside it,
// and plans with no such configuration are marked infeasible.
//
// A failing scenario reports its error in its row while the rest of the
// suite still plans — but the process then exits 1, so scripts cannot
// mistake a partially failed pass for a clean one. -keep-going restores
// exit 0 for partial failures (a fully failed suite still exits 1).
// SIGINT/SIGTERM cancels the in-flight grid: already planned cells render,
// -stats still flushes, and the process exits 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmlscale/internal/core"
	"dmlscale/internal/obs"
	"dmlscale/internal/planner"
	"dmlscale/internal/registry"
	"dmlscale/internal/resilience"
	"dmlscale/internal/resume"
	"dmlscale/internal/scenario"
	"dmlscale/internal/textio"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command under test: flags from args, rendering to the
// given writers, cancellation from ctx, the exit code returned instead of
// called.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dmls-plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suitePath   = fs.String("suite", "", "JSON suite (or single-scenario) file")
		objective   = fs.String("objective", "", "ranking objective: tta, cost or pareto (default: the suite's own, else tta)")
		parallelism = fs.Int("parallel", 0, "total parallelism budget shared by plan workers and intra-curve shards; 0 means GOMAXPROCS")
		format      = fs.String("format", "table", "output format: table, csv or json")
		curves      = fs.Bool("curves", false, "print every plan's full time-to-accuracy curve (table format)")
		stats       = fs.Bool("stats", false, "report kernel-cache hit ratio and planning wall time on stderr")
		tracePath   = fs.String("trace", "", "write a Chrome/Perfetto trace of the planning pass (suite→cell→kernel spans) to this file")
		emitExample = fs.Bool("emit-example", false, "print an example planning suite and exit")
		adaptive    = fs.Bool("adaptive", false, "prune cells whose optimistic cost×time bound is already dominated (same frontier, fewer evaluations)")
		refine      = fs.Int("refine", 0, "rounds of frontier refinement: subdivide numeric sweep axes next to frontier cells")
		maxCost     = fs.Float64("max-cost", 0, "cost budget per run; recommendations are constrained to it, 0 means unconstrained")
		maxTime     = fs.Duration("max-time", 0, "wall-time budget per run (e.g. 90m, 2h); 0 means unconstrained")
		keepGoing   = fs.Bool("keep-going", false, "exit 0 even when some scenarios fail (a fully failed suite still exits 1)")
		ckptPath    = fs.String("checkpoint", "", "append-only journal file recording Monte-Carlo kernel estimates as they are computed; a killed pass resumes from it with -resume")
		resumeRun   = fs.Bool("resume", false, "replay the -checkpoint journal (validated against this suite) so already-paid-for kernel estimates are served from cache; a missing or empty journal starts fresh")
		retries     = fs.Int("retries", -1, "max retries per transient fault at the kernel and cell layers; 0 disables retry, -1 keeps the default (2)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "dmls-plan: %v\n", err)
		return 1
	}

	if *emitExample {
		if err := exampleSuite().Encode(stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	if *suitePath == "" {
		return fail(fmt.Errorf("missing -suite (or -emit-example)"))
	}
	if *format != "table" && *format != "csv" && *format != "json" {
		return fail(fmt.Errorf("unknown -format %q (table, csv, json)", *format))
	}
	obj, err := planner.ParseObjective(*objective)
	if err != nil {
		return fail(err)
	}
	if *objective == "" {
		obj = "" // defer to the suite's own objective
	}
	suite, err := scenario.LoadSuite(*suitePath)
	if err != nil {
		return fail(err)
	}
	if *parallelism > 0 {
		core.SetParallelism(*parallelism)
	}
	applyRetries(*retries)
	if *resumeRun && *ckptPath == "" {
		return fail(fmt.Errorf("-resume needs -checkpoint"))
	}
	var cpRun *resume.Run
	if *ckptPath != "" {
		// Plans are cheap to recompute; the kernel estimates behind them are
		// not. The planning journal records only kernel work, so a resumed
		// pass replans every cell but pays the Monte-Carlo cost once.
		cs, err := suite.Cells()
		if err != nil {
			return fail(err)
		}
		cpRun, err = resume.Open(*ckptPath, suite.Name, cs.Len(), *resumeRun)
		if err != nil {
			return fail(err)
		}
		if cpRun.Resumed {
			fmt.Fprintf(stderr, "dmls-plan: resuming from %s: %d kernel estimates replayed\n",
				*ckptPath, cpRun.KernelReplayed)
		}
	}
	opts := planner.Options{
		Prune:          *adaptive,
		RefineRounds:   *refine,
		MaxCost:        *maxCost,
		MaxTimeSeconds: maxTime.Seconds(),
	}
	var traceBuf *obs.TraceBuffer
	if *tracePath != "" {
		traceBuf = obs.NewTraceBuffer(0)
		obs.SetRecorder(traceBuf)
		defer obs.SetRecorder(nil)
	}
	start := time.Now()
	report, evalStats, err := planner.PlanSuiteCtx(ctx, suite, obj, 0, opts)
	interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	var ckptErr error
	if cpRun != nil {
		ckptErr = cpRun.Close()
	}
	if err != nil && !interrupted {
		return fail(err)
	}
	elapsed := time.Since(start)
	if traceBuf != nil {
		obs.SetRecorder(nil)
		if terr := writeTrace(*tracePath, traceBuf); terr != nil {
			return fail(terr)
		}
		fmt.Fprintf(stderr, "dmls-plan: wrote %d spans to %s\n", traceBuf.Ended(), *tracePath)
	}
	reportStats := func() {
		if *stats {
			fmt.Fprint(stderr, statsReport(evalStats, registry.SnapshotCaches(), elapsed))
		}
	}

	switch *format {
	case "csv":
		if err := scenario.WritePlansCSV(stdout, report.Export().Plans); err != nil {
			return fail(err)
		}
	case "json":
		if err := scenario.WritePlansJSON(stdout, report.Export()); err != nil {
			return fail(err)
		}
	default:
		fmt.Fprintf(stdout, "suite: %s (%d scenarios, objective %s)\n\n", report.Suite, len(report.Plans), report.Objective)
		fmt.Fprintln(stdout, planTable(report).String())
		for _, line := range notices(report) {
			fmt.Fprintln(stdout, line)
		}

		if *curves {
			for _, p := range report.Plans {
				if p.Err != nil {
					continue
				}
				fmt.Fprintf(stdout, "\n%s\n", p.Scenario.Name)
				header := []string{"workers", "t (s)", "cost"}
				if p.ConvergenceAware {
					header = []string{"workers", "t-to-accuracy (s)", "iterations", "cost"}
				}
				table := textio.NewTable(header...)
				for _, pt := range p.Curve {
					if p.ConvergenceAware {
						table.AddRow(pt.Workers, float64(pt.Time), pt.Iterations, pt.Cost)
					} else {
						table.AddRow(pt.Workers, float64(pt.Time), pt.Cost)
					}
				}
				fmt.Fprintln(stdout, table.String())
			}
		}
	}

	reportStats()
	if ckptErr != nil {
		fmt.Fprintf(stderr, "dmls-plan: checkpoint: %v\n", ckptErr)
	}
	if interrupted {
		fmt.Fprintf(stderr, "dmls-plan: interrupted; partial results above (%d of %d cells planned)\n",
			evalStats.Evaluated+evalStats.Pruned, evalStats.Scenarios)
		if *ckptPath != "" {
			fmt.Fprintf(stderr, "dmls-plan: resume with: -suite %s -checkpoint %s -resume\n", *suitePath, *ckptPath)
		}
		return 130
	}
	if ckptErr != nil {
		return 1
	}
	failed := 0
	for _, p := range report.Plans {
		if p.Err != nil {
			failed++
		}
	}
	return exitCode("dmls-plan", failed, len(report.Plans), *keepGoing, stderr)
}

// applyRetries overrides the process-wide retry policy's attempt count:
// -retries N allows N retries after the first attempt, 0 disables retrying
// entirely, and a negative value keeps the built-in default.
func applyRetries(retries int) {
	if retries < 0 {
		return
	}
	p := resilience.Default()
	p.MaxAttempts = retries + 1
	resilience.SetDefault(p)
}

// exitCode turns the failure count into the process exit code: 0 for a
// clean run, 1 when anything failed — unless keepGoing, which tolerates
// partial failure (warned on stderr) but never a fully failed suite.
func exitCode(cmd string, failed, total int, keepGoing bool, stderr io.Writer) int {
	if failed == 0 {
		return 0
	}
	if failed == total {
		fmt.Fprintf(stderr, "%s: all %d scenarios failed\n", cmd, failed)
		return 1
	}
	fmt.Fprintf(stderr, "%s: %d of %d scenarios failed (see results)\n", cmd, failed, total)
	if keepGoing {
		return 0
	}
	return 1
}

// statsReport renders the -stats block: how many cells were planned versus
// pruned on their bound, what refinement added, how long the pass took and
// where that wall time went (bound pass, refinement rounds, per-cell
// planning, kernel compute), the slowest cells, and the process-wide cache
// counters (which, in a CLI run, cover exactly this planning pass).
func statsReport(st scenario.EvalStats, caches registry.CacheStats, elapsed time.Duration) string {
	out := fmt.Sprintf("stats: %d cells planned in %v (%d evaluated, %d pruned, %d failed",
		st.Scenarios, elapsed.Round(time.Microsecond), st.Evaluated, st.Pruned, st.Failed)
	if st.Cancelled > 0 {
		out += fmt.Sprintf(", %d cancelled", st.Cancelled)
	}
	if st.Retried > 0 {
		out += fmt.Sprintf(", %d transient retries", st.Retried)
	}
	out += ")\n"
	if st.RefineRounds > 0 {
		out += fmt.Sprintf("stats: refinement added %d cells over %d rounds\n", st.Refined, st.RefineRounds)
	}
	out += fmt.Sprintf("stats: wall split: bound %v, refine %v, cell planning %v summed, kernel compute %v\n",
		st.BoundTime.Round(time.Microsecond), st.RefineTime.Round(time.Microsecond),
		st.PlanTime.Round(time.Microsecond), st.KernelComputeTime.Round(time.Microsecond))
	out += slowestCellsReport(st.SlowestCells)
	return out + caches.Report()
}

// slowestCellsReport renders the top-k slowest cells, one line, or nothing
// when no cell recorded a timing.
func slowestCellsReport(cells []scenario.CellTiming) string {
	if len(cells) == 0 {
		return ""
	}
	out := "stats: slowest cells:"
	for i, ct := range cells {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf(" %s %v", ct.Name, ct.Total.Round(time.Microsecond))
	}
	return out + "\n"
}

// writeTrace flushes the recorded spans as a Chrome/Perfetto trace file.
func writeTrace(path string, buf *obs.TraceBuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	if err := buf.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return nil
}

// planTable renders the ranked recommendations: one row per plan with its
// optimal cluster size, predicted time, cost and frontier membership.
// Pruned cells show their optimistic bound in place of an optimum; refined
// cells are off-grid subdivisions added by -refine.
func planTable(report planner.Report) *textio.Table {
	table := textio.NewTable("rank", "scenario", "workers", "time (s)", "iterations", "cost", "pareto", "status")
	for _, p := range report.Plans {
		if p.Err != nil {
			table.AddRow(p.Rank, p.Scenario.Name, "-", "-", "-", "-", "-", p.Err.Error())
			continue
		}
		if p.Pruned {
			table.AddRow(p.Rank, p.Scenario.Name, "-",
				fmt.Sprintf("≥%.4g", float64(p.Bound.Time)),
				"-",
				fmt.Sprintf("≥%.4g", p.Bound.Cost),
				"", "pruned")
			continue
		}
		iters, pareto, status := "-", "", "ok"
		if p.ConvergenceAware {
			iters = fmt.Sprintf("%.0f", p.Optimal.Iterations)
			if p.Pareto {
				pareto = "*"
			}
		} else {
			status = "per-iteration"
		}
		if p.Infeasible {
			status = "over budget"
		} else if p.Refined {
			status = "refined"
		}
		table.AddRow(p.Rank, p.Scenario.Name, p.Optimal.Workers,
			fmt.Sprintf("%.4g", float64(p.Optimal.Time)),
			iters,
			fmt.Sprintf("%.4g", p.Optimal.Cost),
			pareto, status)
	}
	return table
}

// notices collects the one-line explanations of every downgraded plan.
// Pruned cells are excluded — their status column and the -stats counter
// already say why, and an adaptive pass may prune thousands of them.
func notices(report planner.Report) []string {
	var out []string
	for _, p := range report.Plans {
		if p.Err == nil && !p.Pruned && p.Notice != "" {
			out = append(out, fmt.Sprintf("note: %s: %s", p.Scenario.Name, p.Notice))
		}
	}
	return out
}

// exampleSuite is the -emit-example payload: the Fig. 3 convolutional
// workload with a diminishing-returns convergence block, swept across
// interconnects, ranked by the cost×time frontier.
func exampleSuite() scenario.Suite {
	base := scenario.Fig3()
	base.Name = "conv ANN weak scaling"
	base.MaxWorkers = 128
	base.Convergence = &scenario.ConvergenceSpec{
		Rule:                "diminishing",
		BaseIterations:      50000,
		CriticalBatchGrowth: 32,
	}
	return scenario.Suite{
		Name:      "time-to-accuracy planning: conv ANN across interconnects",
		Objective: "pareto",
		Sweep: &scenario.Sweep{
			Base:                 base,
			BandwidthsBitsPerSec: []float64{1e9, 10e9},
			Protocols:            []string{"two-stage-tree", "ring", "pipelined-tree"},
		},
	}
}
