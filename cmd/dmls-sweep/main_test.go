package main

import (
	"strings"
	"testing"
	"time"

	"dmlscale/internal/registry"
	"dmlscale/internal/scenario"
)

func TestExampleSuiteEvaluates(t *testing.T) {
	suite := exampleSuite()
	scenarios, err := suite.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 8 {
		t.Fatalf("example suite expands to %d scenarios, want 8", len(scenarios))
	}
	results, err := scenario.EvaluateSuite(suite, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v", res.Scenario.Name, res.Err)
		}
	}
	table := summaryTable(results)
	if !strings.Contains(table.String(), "ok") {
		t.Error("summary table missing ok rows")
	}
	if _, ok := overlayPlot(results); !ok {
		t.Error("overlay plot failed for healthy results")
	}
}

func TestStatsReport(t *testing.T) {
	results, st, err := scenario.EvaluateSuiteStats(exampleSuite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scenarios != len(results) || st.Evaluated+st.CurvesDeduped+st.Failed != st.Scenarios {
		t.Errorf("inconsistent stats %+v for %d results", st, len(results))
	}
	rendered := statsReport(st, registry.SnapshotCaches(), time.Millisecond)
	for _, want := range []string{"evaluated", "deduped", "pruned", "refined", "hit ratio", "kernel cache", "graph caches"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("stats report missing %q:\n%s", want, rendered)
		}
	}
}

func TestSummaryTableReportsErrors(t *testing.T) {
	bad := scenario.Fig2()
	bad.Name = "bad"
	bad.Hardware = scenario.HardwareSpec{Preset: "abacus"}
	results, err := scenario.EvaluateSuite(scenario.Suite{
		Name:      "mixed",
		Scenarios: []scenario.Scenario{scenario.Fig2(), bad},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rendered := summaryTable(results).String()
	if !strings.Contains(rendered, "abacus") {
		t.Errorf("error row missing from table:\n%s", rendered)
	}
	if _, ok := overlayPlot(results); !ok {
		t.Error("overlay plot should still draw the healthy curve")
	}
	if _, ok := overlayPlot(results[1:]); ok {
		t.Error("overlay plot drew with zero healthy curves")
	}
}
