// Command dmls-sweep evaluates a whole suite of scenarios — an explicit
// list, a parameter sweep (bandwidth × protocol × precision × worker range)
// over a base scenario, or both — concurrently, and renders the comparison:
// one row per scenario with its peak speedup and optimum, plus an overlaid
// speedup plot.
//
// Usage:
//
//	dmls-sweep -suite examples/suites/fig2-bandwidth-sweep.json
//	dmls-sweep -emit-example > suite.json
//	dmls-sweep -suite suite.json -parallel 4 -curves
//	dmls-sweep -suite suite.json -format csv > results.csv
//	dmls-sweep -suite suite.json -format json | jq .results
//
// -format csv|json replaces the ASCII rendering with a machine-readable
// export so deployment tools can consume sweep results. -parallel sizes the
// shared parallelism budget that both suite-level curve workers and
// intra-curve Monte-Carlo shards draw from. -stats appends a cache
// observability report on stderr: the Monte-Carlo kernel-cache hit ratio,
// how many curves were deduplicated (identical cells evaluated once and
// fanned out), and the build-versus-sample wall-time split.
//
// A failing scenario (unknown preset, bad figures) reports its error in the
// table; the rest of the suite still evaluates.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmlscale/internal/asciiplot"
	"dmlscale/internal/core"
	"dmlscale/internal/registry"
	"dmlscale/internal/scenario"
	"dmlscale/internal/textio"
)

// maxPlotCurves bounds how many curves the overlay plot draws before it
// stops being readable.
const maxPlotCurves = 8

func main() {
	var (
		suitePath   = flag.String("suite", "", "JSON suite (or single-scenario) file")
		parallelism = flag.Int("parallel", 0, "total parallelism budget shared by suite-level curve workers and intra-curve Monte-Carlo shards; 0 means GOMAXPROCS")
		format      = flag.String("format", "table", "output format: table, csv or json")
		curves      = flag.Bool("curves", false, "print every scenario's full speedup curve (table format)")
		noPlot      = flag.Bool("no-plot", false, "skip the overlaid speedup plot")
		stats       = flag.Bool("stats", false, "report kernel-cache hit ratio, curve dedup and wall-time split on stderr")
		emitExample = flag.Bool("emit-example", false, "print an example sweep suite and exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dmls-sweep: %v\n", err)
		os.Exit(1)
	}

	if *emitExample {
		if err := exampleSuite().Encode(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	if *suitePath == "" {
		fail(fmt.Errorf("missing -suite (or -emit-example)"))
	}
	if *format != "table" && *format != "csv" && *format != "json" {
		fail(fmt.Errorf("unknown -format %q (table, csv, json)", *format))
	}
	suite, err := scenario.LoadSuite(*suitePath)
	if err != nil {
		fail(err)
	}
	if *parallelism > 0 {
		core.SetParallelism(*parallelism)
	}
	start := time.Now()
	results, evalStats, err := scenario.EvaluateSuiteStats(suite, 0)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	reportStats := func() {
		if *stats {
			fmt.Fprint(os.Stderr, statsReport(evalStats, registry.SnapshotCaches(), elapsed))
		}
	}

	switch *format {
	case "csv":
		if err := scenario.WriteResultsCSV(os.Stdout, results); err != nil {
			fail(err)
		}
		reportStats()
		exitReportingFailures(results)
		return
	case "json":
		if err := scenario.WriteResultsJSON(os.Stdout, suite.Name, results); err != nil {
			fail(err)
		}
		reportStats()
		exitReportingFailures(results)
		return
	}

	fmt.Printf("suite: %s (%d scenarios)\n\n", suite.Name, len(results))
	fmt.Println(summaryTable(results).String())

	if !*noPlot {
		if plot, ok := overlayPlot(results); ok {
			fmt.Println(plot)
		}
	}
	if *curves {
		for _, res := range results {
			if res.Err != nil {
				continue
			}
			fmt.Printf("\n%s\n", res.Scenario.Name)
			table := textio.NewTable("workers", "t (s)", "speedup")
			for _, p := range res.Curve.Points {
				table.AddRow(p.N, float64(p.Time), p.Speedup)
			}
			fmt.Println(table.String())
		}
	}

	reportStats()
	exitReportingFailures(results)
}

// statsReport renders the -stats block: the suite-level evaluation figures
// and the process-wide cache counters (which, in a CLI run, cover exactly
// this evaluation).
func statsReport(st scenario.EvalStats, caches registry.CacheStats, elapsed time.Duration) string {
	return fmt.Sprintf("stats: %d cells: %d evaluated, %d deduped, %d pruned, %d refined, %d failed; %v elapsed (build %v + sample %v summed across cells)\n",
		st.Scenarios, st.Evaluated, st.CurvesDeduped, st.Pruned, st.Refined, st.Failed, elapsed.Round(time.Microsecond),
		st.BuildTime.Round(time.Microsecond), st.SampleTime.Round(time.Microsecond)) +
		caches.Report()
}

// exitReportingFailures warns about partially failed suites on stderr and
// exits non-zero when nothing evaluated.
func exitReportingFailures(results []scenario.Result) {
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
		}
	}
	if failed == len(results) && failed > 0 {
		fmt.Fprintf(os.Stderr, "dmls-sweep: all %d scenarios failed\n", failed)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "dmls-sweep: %d of %d scenarios failed (see results)\n", failed, len(results))
	}
}

// summaryTable renders one row per scenario: optimum, peak, tail speedup,
// or the error that stopped it.
func summaryTable(results []scenario.Result) *textio.Table {
	table := textio.NewTable("scenario", "optimal workers", "peak speedup", "s(max)", "status")
	for _, res := range results {
		if res.Err != nil {
			table.AddRow(res.Scenario.Name, "-", "-", "-", res.Err.Error())
			continue
		}
		tail := res.Curve.Points[len(res.Curve.Points)-1]
		table.AddRow(res.Scenario.Name, res.OptimalN,
			fmt.Sprintf("%.2f", res.PeakSpeedup),
			fmt.Sprintf("%.2f at %d", tail.Speedup, tail.N),
			"ok")
	}
	return table
}

// overlayPlot draws the successful curves on one canvas, up to
// maxPlotCurves of them.
func overlayPlot(results []scenario.Result) (string, bool) {
	var (
		names    []string
		workers  [][]int
		speedups [][]float64
	)
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		names = append(names, res.Scenario.Name)
		workers = append(workers, res.Curve.Workers())
		speedups = append(speedups, res.Curve.Speedups())
		if len(names) == maxPlotCurves {
			break
		}
	}
	if len(names) == 0 {
		return "", false
	}
	plot, err := asciiplot.CurvePlot("speedup", names, workers, speedups, 72, 18)
	if err != nil {
		return "", false
	}
	return plot, true
}

// exampleSuite is the -emit-example payload: the Fig. 2 workload swept over
// bandwidth and protocol.
func exampleSuite() scenario.Suite {
	return scenario.Suite{
		Name: "Fig. 2 workload: bandwidth × protocol sweep",
		Sweep: &scenario.Sweep{
			Base:                 scenario.Fig2(),
			BandwidthsBitsPerSec: []float64{1e9, 10e9},
			Protocols:            []string{"spark", "two-stage-tree", "ring", "linear"},
		},
		MaxWorkers: 32,
	}
}
