// Command dmls-sweep evaluates a whole suite of scenarios — an explicit
// list, a parameter sweep (bandwidth × protocol × precision × worker range)
// over a base scenario, or both — concurrently, and renders the comparison:
// one row per scenario with its peak speedup and optimum, plus an overlaid
// speedup plot.
//
// Usage:
//
//	dmls-sweep -suite examples/suites/fig2-bandwidth-sweep.json
//	dmls-sweep -emit-example > suite.json
//	dmls-sweep -suite suite.json -parallel 4 -curves
//	dmls-sweep -suite suite.json -format csv > results.csv
//	dmls-sweep -suite suite.json -format json | jq .results
//
// -format csv|json replaces the ASCII rendering with a machine-readable
// export so deployment tools can consume sweep results. -parallel sizes the
// shared parallelism budget that both suite-level curve workers and
// intra-curve Monte-Carlo shards draw from. -stats appends a cache
// observability report on stderr: the Monte-Carlo kernel-cache hit ratio,
// how many curves were deduplicated (identical cells evaluated once and
// fanned out), and the build-versus-sample wall-time split.
//
// A failing scenario (unknown preset, bad figures) reports its error in the
// table; the rest of the suite still evaluates — but the process then exits
// 1, so scripts cannot mistake a partially failed sweep for a clean one.
// -keep-going restores exit 0 for partial failures (a fully failed suite
// still exits 1). SIGINT/SIGTERM cancels the in-flight grid: already
// evaluated cells render (cancelled ones carry a "cancelled" error), -stats
// still flushes, and the process exits 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmlscale/internal/asciiplot"
	"dmlscale/internal/core"
	"dmlscale/internal/obs"
	"dmlscale/internal/registry"
	"dmlscale/internal/resilience"
	"dmlscale/internal/resume"
	"dmlscale/internal/scenario"
	"dmlscale/internal/textio"
)

// maxPlotCurves bounds how many curves the overlay plot draws before it
// stops being readable.
const maxPlotCurves = 8

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command under test: flags from args, rendering to the
// given writers, cancellation from ctx, the exit code returned instead of
// called.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dmls-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suitePath   = fs.String("suite", "", "JSON suite (or single-scenario) file")
		parallelism = fs.Int("parallel", 0, "total parallelism budget shared by suite-level curve workers and intra-curve Monte-Carlo shards; 0 means GOMAXPROCS")
		format      = fs.String("format", "table", "output format: table, csv or json")
		curves      = fs.Bool("curves", false, "print every scenario's full speedup curve (table format)")
		noPlot      = fs.Bool("no-plot", false, "skip the overlaid speedup plot")
		stats       = fs.Bool("stats", false, "report kernel-cache hit ratio, curve dedup and wall-time split on stderr")
		tracePath   = fs.String("trace", "", "write a Chrome/Perfetto trace of the evaluation (suite→cell→kernel spans) to this file")
		emitExample = fs.Bool("emit-example", false, "print an example sweep suite and exit")
		keepGoing   = fs.Bool("keep-going", false, "exit 0 even when some scenarios fail (a fully failed suite still exits 1)")
		ckptPath    = fs.String("checkpoint", "", "append-only journal file recording finished cells and kernel estimates as they land; a killed run resumes from it with -resume")
		resumeRun   = fs.Bool("resume", false, "replay the -checkpoint journal (validated against this suite) and evaluate only the missing cells; a missing or empty journal starts fresh")
		retries     = fs.Int("retries", -1, "max retries per transient fault at the kernel and cell layers; 0 disables retry, -1 keeps the default (2)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "dmls-sweep: %v\n", err)
		return 1
	}

	if *emitExample {
		if err := exampleSuite().Encode(stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	if *suitePath == "" {
		return fail(fmt.Errorf("missing -suite (or -emit-example)"))
	}
	if *format != "table" && *format != "csv" && *format != "json" {
		return fail(fmt.Errorf("unknown -format %q (table, csv, json)", *format))
	}
	suite, err := scenario.LoadSuite(*suitePath)
	if err != nil {
		return fail(err)
	}
	if *parallelism > 0 {
		core.SetParallelism(*parallelism)
	}
	applyRetries(*retries)
	if *resumeRun && *ckptPath == "" {
		return fail(fmt.Errorf("-resume needs -checkpoint"))
	}
	var (
		cpRun *resume.Run
		cp    scenario.Checkpoint
	)
	if *ckptPath != "" {
		cs, err := suite.Cells()
		if err != nil {
			return fail(err)
		}
		cpRun, err = resume.Open(*ckptPath, suite.Name, cs.Len(), *resumeRun)
		if err != nil {
			return fail(err)
		}
		cp = cpRun
		if cpRun.Resumed {
			fmt.Fprintf(stderr, "dmls-sweep: resuming from %s: %d cells and %d kernel estimates replayed\n",
				*ckptPath, cpRun.CellsReplayed, cpRun.KernelReplayed)
		}
	}
	var traceBuf *obs.TraceBuffer
	if *tracePath != "" {
		traceBuf = obs.NewTraceBuffer(0)
		obs.SetRecorder(traceBuf)
		defer obs.SetRecorder(nil)
	}
	start := time.Now()
	results, evalStats, err := scenario.EvaluateSuiteCheckpointCtx(ctx, suite, 0, cp)
	interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	var ckptErr error
	if cpRun != nil {
		// Close before rendering: the journal must be durable even if the
		// render path fails, and an append failure must not exit 0.
		ckptErr = cpRun.Close()
	}
	if err != nil && !interrupted {
		return fail(err)
	}
	elapsed := time.Since(start)
	if traceBuf != nil {
		obs.SetRecorder(nil)
		if terr := writeTrace(*tracePath, traceBuf); terr != nil {
			return fail(terr)
		}
		fmt.Fprintf(stderr, "dmls-sweep: wrote %d spans to %s\n", traceBuf.Ended(), *tracePath)
	}
	reportStats := func() {
		if *stats {
			fmt.Fprint(stderr, statsReport(evalStats, registry.SnapshotCaches(), elapsed))
		}
	}

	switch *format {
	case "csv":
		if err := scenario.WriteResultsCSV(stdout, results); err != nil {
			return fail(err)
		}
	case "json":
		if err := scenario.WriteResultsJSON(stdout, suite.Name, results); err != nil {
			return fail(err)
		}
	default:
		fmt.Fprintf(stdout, "suite: %s (%d scenarios)\n\n", suite.Name, len(results))
		fmt.Fprintln(stdout, summaryTable(results).String())

		if !*noPlot {
			if plot, ok := overlayPlot(results); ok {
				fmt.Fprintln(stdout, plot)
			}
		}
		if *curves {
			for _, res := range results {
				if res.Err != nil {
					continue
				}
				fmt.Fprintf(stdout, "\n%s\n", res.Scenario.Name)
				table := textio.NewTable("workers", "t (s)", "speedup")
				for _, p := range res.Curve.Points {
					table.AddRow(p.N, float64(p.Time), p.Speedup)
				}
				fmt.Fprintln(stdout, table.String())
			}
		}
	}

	reportStats()
	if ckptErr != nil {
		fmt.Fprintf(stderr, "dmls-sweep: checkpoint: %v\n", ckptErr)
	}
	if interrupted {
		fmt.Fprintf(stderr, "dmls-sweep: interrupted; partial results above (%d of %d cells evaluated)\n",
			evalStats.Evaluated+evalStats.CurvesDeduped, evalStats.Scenarios)
		if *ckptPath != "" {
			fmt.Fprintf(stderr, "dmls-sweep: resume with: -suite %s -checkpoint %s -resume\n", *suitePath, *ckptPath)
		}
		return 130
	}
	if ckptErr != nil {
		return 1
	}
	return exitCode("dmls-sweep", countFailures(results), len(results), *keepGoing, stderr)
}

// applyRetries overrides the process-wide retry policy's attempt count:
// -retries N allows N retries after the first attempt, 0 disables retrying
// entirely, and a negative value keeps the built-in default.
func applyRetries(retries int) {
	if retries < 0 {
		return
	}
	p := resilience.Default()
	p.MaxAttempts = retries + 1
	resilience.SetDefault(p)
}

// countFailures counts the results that carry their own evaluation error.
func countFailures(results []scenario.Result) int {
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
		}
	}
	return failed
}

// exitCode turns the failure count into the process exit code: 0 for a
// clean run, 1 when anything failed — unless keepGoing, which tolerates
// partial failure (warned on stderr) but never a fully failed suite.
func exitCode(cmd string, failed, total int, keepGoing bool, stderr io.Writer) int {
	if failed == 0 {
		return 0
	}
	if failed == total {
		fmt.Fprintf(stderr, "%s: all %d scenarios failed\n", cmd, failed)
		return 1
	}
	fmt.Fprintf(stderr, "%s: %d of %d scenarios failed (see results)\n", cmd, failed, total)
	if keepGoing {
		return 0
	}
	return 1
}

// statsReport renders the -stats block: the suite-level evaluation figures,
// the wall-time split (including how much of it was Monte-Carlo kernel
// compute), the slowest cells and the process-wide cache counters (which, in
// a CLI run, cover exactly this evaluation).
func statsReport(st scenario.EvalStats, caches registry.CacheStats, elapsed time.Duration) string {
	line := fmt.Sprintf("stats: %d cells: %d evaluated, %d deduped, %d pruned, %d refined, %d failed",
		st.Scenarios, st.Evaluated, st.CurvesDeduped, st.Pruned, st.Refined, st.Failed)
	if st.Cancelled > 0 {
		line += fmt.Sprintf(", %d cancelled", st.Cancelled)
	}
	if st.ResumedCells > 0 {
		line += fmt.Sprintf(", %d resumed from checkpoint", st.ResumedCells)
	}
	if st.Retried > 0 {
		line += fmt.Sprintf(", %d transient retries", st.Retried)
	}
	out := line + fmt.Sprintf("; %v elapsed (build %v + sample %v summed across cells)\n",
		elapsed.Round(time.Microsecond),
		st.BuildTime.Round(time.Microsecond), st.SampleTime.Round(time.Microsecond))
	out += fmt.Sprintf("stats: kernel compute %v of the sampled time (cache misses only; hits are free)\n",
		st.KernelComputeTime.Round(time.Microsecond))
	out += slowestCellsReport(st.SlowestCells)
	return out + caches.Report()
}

// slowestCellsReport renders the top-k slowest cells, one line, or nothing
// when no cell recorded a timing.
func slowestCellsReport(cells []scenario.CellTiming) string {
	if len(cells) == 0 {
		return ""
	}
	out := "stats: slowest cells:"
	for i, ct := range cells {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf(" %s %v", ct.Name, ct.Total.Round(time.Microsecond))
		if ct.Build > 0 || ct.Sample > 0 {
			out += fmt.Sprintf(" (build %v + sample %v)",
				ct.Build.Round(time.Microsecond), ct.Sample.Round(time.Microsecond))
		}
	}
	return out + "\n"
}

// writeTrace flushes the recorded spans as a Chrome/Perfetto trace file.
func writeTrace(path string, buf *obs.TraceBuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	if err := buf.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return nil
}

// summaryTable renders one row per scenario: optimum, peak, tail speedup,
// or the error that stopped it.
func summaryTable(results []scenario.Result) *textio.Table {
	table := textio.NewTable("scenario", "optimal workers", "peak speedup", "s(max)", "status")
	for _, res := range results {
		if res.Err != nil {
			table.AddRow(res.Scenario.Name, "-", "-", "-", res.Err.Error())
			continue
		}
		tail := res.Curve.Points[len(res.Curve.Points)-1]
		table.AddRow(res.Scenario.Name, res.OptimalN,
			fmt.Sprintf("%.2f", res.PeakSpeedup),
			fmt.Sprintf("%.2f at %d", tail.Speedup, tail.N),
			"ok")
	}
	return table
}

// overlayPlot draws the successful curves on one canvas, up to
// maxPlotCurves of them.
func overlayPlot(results []scenario.Result) (string, bool) {
	var (
		names    []string
		workers  [][]int
		speedups [][]float64
	)
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		names = append(names, res.Scenario.Name)
		workers = append(workers, res.Curve.Workers())
		speedups = append(speedups, res.Curve.Speedups())
		if len(names) == maxPlotCurves {
			break
		}
	}
	if len(names) == 0 {
		return "", false
	}
	plot, err := asciiplot.CurvePlot("speedup", names, workers, speedups, 72, 18)
	if err != nil {
		return "", false
	}
	return plot, true
}

// exampleSuite is the -emit-example payload: the Fig. 2 workload swept over
// bandwidth and protocol.
func exampleSuite() scenario.Suite {
	return scenario.Suite{
		Name: "Fig. 2 workload: bandwidth × protocol sweep",
		Sweep: &scenario.Sweep{
			Base:                 scenario.Fig2(),
			BandwidthsBitsPerSec: []float64{1e9, 10e9},
			Protocols:            []string{"spark", "two-stage-tree", "ring", "linear"},
		},
		MaxWorkers: 32,
	}
}
