package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestTracedSweepOutputBitIdentical: -trace must observe, never perturb —
// the JSON export of a traced sweep equals the untraced one byte for byte.
func TestTracedSweepOutputBitIdentical(t *testing.T) {
	suite := writeSuite(t, goodScenario)
	var plain, traced, stderr bytes.Buffer
	if got := run(context.Background(), []string{"-suite", suite, "-format", "json"}, &plain, &stderr); got != 0 {
		t.Fatalf("untraced run: exit %d\n%s", got, stderr.String())
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	stderr.Reset()
	if got := run(context.Background(), []string{"-suite", suite, "-format", "json", "-trace", tracePath}, &traced, &stderr); got != 0 {
		t.Fatalf("traced run: exit %d\n%s", got, stderr.String())
	}
	if !bytes.Equal(plain.Bytes(), traced.Bytes()) {
		t.Fatalf("traced output differs from untraced:\nuntraced: %s\ntraced:   %s", plain.String(), traced.String())
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// TestStatsReportsWallSplit: the extended -stats block attributes kernel
// compute time and names the slowest cells.
func TestStatsReportsWallSplit(t *testing.T) {
	suite := writeSuite(t, goodScenario)
	var stdout, stderr bytes.Buffer
	if got := run(context.Background(), []string{"-suite", suite, "-stats"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d\n%s", got, stderr.String())
	}
	for _, want := range []string{"kernel compute", "slowest cells"} {
		if !bytes.Contains(stderr.Bytes(), []byte(want)) {
			t.Fatalf("-stats missing %q:\n%s", want, stderr.String())
		}
	}
}
