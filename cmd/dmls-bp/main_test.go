package main

import (
	"testing"
)

func TestBuildGraph(t *testing.T) {
	cases := []struct {
		kind     string
		vertices int
		minV     int
	}{
		{"grid", 100, 100},
		{"cycle", 64, 64},
		{"tree", 31, 31},
		{"dns", 500, 500},
	}
	for _, tt := range cases {
		g, err := buildGraph(tt.kind, tt.vertices, 3)
		if err != nil {
			t.Errorf("%s: %v", tt.kind, err)
			continue
		}
		if g.NumVertices() < tt.minV {
			t.Errorf("%s: %d vertices, want ≥ %d", tt.kind, g.NumVertices(), tt.minV)
		}
	}
	if _, err := buildGraph("torus", 10, 1); err == nil {
		t.Error("unknown graph kind accepted")
	}
}

func TestBuildGraphGridRoundsUp(t *testing.T) {
	// 'grid' rounds up to the next square.
	g, err := buildGraph("grid", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 16 {
		t.Errorf("grid(10) = %d vertices, want 16 (4×4)", g.NumVertices())
	}
}
