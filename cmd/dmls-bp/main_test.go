package main

import (
	"testing"

	"dmlscale/internal/registry"
)

// TestGraphFamiliesForCLI: the families the -graph flag accepts come from
// the one registry and all materialize.
func TestGraphFamiliesForCLI(t *testing.T) {
	cases := []struct {
		kind     string
		vertices int
		minV     int
	}{
		{"grid", 100, 100},
		{"cycle", 64, 64},
		{"tree", 31, 31},
		{"dns", 500, 500},
	}
	for _, tt := range cases {
		g, err := registry.BuildGraph(registry.GraphSpec{Family: tt.kind, Vertices: tt.vertices, Seed: 3})
		if err != nil {
			t.Errorf("%s: %v", tt.kind, err)
			continue
		}
		if g.NumVertices() < tt.minV {
			t.Errorf("%s: %d vertices, want ≥ %d", tt.kind, g.NumVertices(), tt.minV)
		}
	}
	if _, err := registry.BuildGraph(registry.GraphSpec{Family: "torus", Vertices: 10, Seed: 1}); err == nil {
		t.Error("unknown graph kind accepted")
	}
}

func TestGridRoundsUp(t *testing.T) {
	// 'grid' rounds up to the next square.
	g, err := registry.BuildGraph(registry.GraphSpec{Family: "grid", Vertices: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 16 {
		t.Errorf("grid(10) = %d vertices, want 16 (4×4)", g.NumVertices())
	}
}
