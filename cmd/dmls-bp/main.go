// Command dmls-bp runs real loopy belief propagation on a generated graph
// and reports convergence, timing per worker count, and the paper's model
// estimate for the same degree sequence.
//
// Usage:
//
//	dmls-bp [-graph family] [-vertices N] [-states S]
//	        [-workers list] [-coupling J] [-field h] [-iters N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dmlscale/internal/bp"
	"dmlscale/internal/mrf"
	"dmlscale/internal/partition"
	"dmlscale/internal/registry"
	"dmlscale/internal/textio"
)

func main() {
	var (
		kind     = flag.String("graph", "grid", "graph family: "+strings.Join(registry.GraphFamilies(), ", "))
		vertices = flag.Int("vertices", 1024, "approximate vertex count")
		states   = flag.Int("states", 2, "states per variable")
		workers  = flag.String("workers", "1,2,4,8", "comma-separated worker counts")
		coupling = flag.Float64("coupling", 0.3, "Ising coupling J (states=2 only)")
		field    = flag.Float64("field", 0.1, "Ising field h (states=2 only)")
		iters    = flag.Int("iters", 200, "iteration cap")
		seed     = flag.Int64("seed", 7, "generator seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dmls-bp: %v\n", err)
		os.Exit(1)
	}

	g, err := registry.BuildGraph(registry.GraphSpec{Family: *kind, Vertices: *vertices, Seed: *seed})
	if err != nil {
		fail(err)
	}
	var model *mrf.MRF
	if *states == 2 {
		model, err = mrf.Ising(g, *coupling, *field)
	} else {
		model, err = mrf.Random(g, *states, *seed)
	}
	if err != nil {
		fail(err)
	}
	stats := g.Stats()
	fmt.Printf("graph: %s, V=%d E=%d maxdeg=%d meandeg=%.2f, S=%d\n\n",
		*kind, stats.Vertices, stats.Edges, stats.MaxDegree, stats.MeanDegree, *states)

	table := textio.NewTable("workers", "iterations", "converged", "residual", "wall time", "speedup")
	var base time.Duration
	for _, tok := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fail(fmt.Errorf("bad worker count %q", tok))
		}
		start := time.Now()
		res, err := bp.Run(model, bp.Options{MaxIterations: *iters, Workers: n, Damping: 0.1})
		if err != nil {
			fail(err)
		}
		elapsed := time.Since(start)
		if base == 0 {
			base = elapsed
		}
		table.AddRow(n, res.Iterations, res.Converged,
			fmt.Sprintf("%.2e", res.Residual),
			elapsed.Round(time.Microsecond).String(),
			float64(base)/float64(elapsed))
	}
	fmt.Println(table.String())

	// The paper's model estimate for this degree sequence.
	est := textio.NewTable("workers", "model speedup E/maxEi")
	degrees := g.Degrees()
	e1, err := partition.MonteCarloMaxEdges(degrees, 1, 1, *seed)
	if err != nil {
		fail(err)
	}
	ns := []int{1, 2, 4, 8, 16}
	ests, err := partition.MonteCarloMaxEdgesBatch(context.Background(), degrees, ns, 3, *seed)
	if err != nil {
		fail(err)
	}
	for i, n := range ns {
		est.AddRow(n, e1.MaxEdges/ests[i].MaxEdges)
	}
	fmt.Println()
	fmt.Println(est.String())
}
