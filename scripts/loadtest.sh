#!/usr/bin/env bash
# loadtest.sh — smoke-test dmls-serve under pressure and record the result.
#
# Builds dmls-serve, starts it with a deliberately small -max-inflight so
# admission control is observable, replays every examples/suites/*.json as
# both a /v1/sweep and a /v1/plan request at higher client concurrency, and
# asserts the three robustness properties end to end:
#
#   1. every request is either served (200) or cleanly shed (429) — never
#      an unexplained error, and at this concurrency some MUST be shed;
#   2. /healthz answers 200 throughout the storm;
#   3. SIGTERM drains: the server exits 0 within the drain deadline.
#
# It also smoke-tests the metrics endpoint both ways: the default
# Prometheus text exposition must carry well-formed # TYPE lines and a
# populated request-duration histogram, and Accept: application/json must
# still serve the legacy JSON snapshot.
#
# The p50/p99/shed-rate summary lands in BENCH_PR<n>.json at the repo root,
# the same perf-trajectory record bench.sh feeds.
#
# Usage:
#   scripts/loadtest.sh                       # writes BENCH_PR7.json
#   OUT=/tmp/smoke.json scripts/loadtest.sh   # CI smoke, no baseline write
#   REQUESTS=20 CONCURRENCY=4 scripts/loadtest.sh

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR7.json}"
PORT="${PORT:-18080}"
REQUESTS="${REQUESTS:-60}"
CONCURRENCY="${CONCURRENCY:-8}"
MAX_INFLIGHT="${MAX_INFLIGHT:-2}"
DRAIN_TIMEOUT="${DRAIN_TIMEOUT:-10s}"

if [ -e "$OUT" ]; then
    echo "loadtest.sh: $OUT already exists (a committed perf baseline)." >&2
    echo "loadtest.sh: pass OUT=<path> to record this run without clobbering it." >&2
    exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/dmls-serve" ./cmd/dmls-serve
go build -o "$workdir/loadtest" ./scripts/loadtest

"$workdir/dmls-serve" -addr "127.0.0.1:$PORT" -max-inflight "$MAX_INFLIGHT" \
    -drain-timeout "$DRAIN_TIMEOUT" 2>"$workdir/serve.log" &
server_pid=$!
# Kill the server on any failure path so the trap's rm never races a writer.
trap 'kill "$server_pid" 2>/dev/null || true; wait "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

base="http://127.0.0.1:$PORT"
for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$base/healthz" 2>/dev/null; then break; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "loadtest.sh: dmls-serve died on startup:" >&2
        cat "$workdir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS -o /dev/null "$base/healthz" || { echo "loadtest.sh: server never became healthy" >&2; exit 1; }

"$workdir/loadtest" -base "$base" -suites examples/suites \
    -requests "$REQUESTS" -concurrency "$CONCURRENCY" \
    -server-max-inflight "$MAX_INFLIGHT" >"$workdir/summary.json"

summary=$(cat "$workdir/summary.json")
shed=$(echo "$summary" | jq -r .shed)
if [ "$shed" -eq 0 ]; then
    echo "loadtest.sh: expected admission control to shed at this concurrency, but shed=0" >&2
    exit 1
fi

# Metrics smoke, both content negotiations, scraped while the server is
# still warm from the storm:
#   - default GET /metrics is Prometheus text: # TYPE lines present and
#     well-formed, and the per-route duration histogram actually populated;
#   - Accept: application/json still serves the legacy JSON snapshot.
curl -fsS "$base/metrics" >"$workdir/metrics.prom"
if ! grep -q '^# TYPE dmls_requests_total counter$' "$workdir/metrics.prom"; then
    echo "loadtest.sh: Prometheus exposition missing dmls_requests_total TYPE line:" >&2
    cat "$workdir/metrics.prom" >&2
    exit 1
fi
if awk '/^# TYPE /{ if (NF != 4 || ($4 != "counter" && $4 != "gauge" && $4 != "histogram")) bad=1 } END { exit bad }' "$workdir/metrics.prom"; then :; else
    echo "loadtest.sh: malformed # TYPE line in Prometheus exposition:" >&2
    grep '^# TYPE' "$workdir/metrics.prom" >&2
    exit 1
fi
dur_count=$(awk '$1 ~ /^dmls_request_duration_seconds_count/ { sum += $2 } END { print sum + 0 }' "$workdir/metrics.prom")
if [ "$dur_count" -eq 0 ]; then
    echo "loadtest.sh: request-duration histogram empty after the load storm" >&2
    exit 1
fi
json_requests=$(curl -fsS -H 'Accept: application/json' "$base/metrics" | jq -r .requests_total)
if [ "$json_requests" -le 0 ]; then
    echo "loadtest.sh: legacy JSON metrics unreadable or empty (requests_total=$json_requests)" >&2
    exit 1
fi
echo "loadtest.sh: metrics smoke ok (duration observations: $dur_count, requests_total: $json_requests)" >&2

# Clean drain: SIGTERM, then the server must exit 0 inside the drain window.
kill -TERM "$server_pid"
drain_rc=0
wait "$server_pid" || drain_rc=$?
if [ "$drain_rc" -ne 0 ]; then
    echo "loadtest.sh: dmls-serve did not drain cleanly (exit $drain_rc):" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
if ! grep -q "drained" "$workdir/serve.log"; then
    echo "loadtest.sh: no drain notice in the server log:" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
trap 'rm -rf "$workdir"' EXIT

echo "$summary" | jq '. + {"clean_drain": true}' >"$OUT"
echo "loadtest.sh: wrote $OUT" >&2
cat "$OUT"
