#!/usr/bin/env bash
# loadtest.sh — smoke-test dmls-serve under pressure and record the result.
#
# Builds dmls-serve, starts it with a deliberately small -max-inflight so
# admission control is observable, replays every examples/suites/*.json as
# both a /v1/sweep and a /v1/plan request at higher client concurrency, and
# asserts the three robustness properties end to end:
#
#   1. every request is either served (200) or cleanly shed (429) — never
#      an unexplained error, and at this concurrency some MUST be shed;
#   2. /healthz answers 200 throughout the storm;
#   3. SIGTERM drains: the server exits 0 within the drain deadline.
#
# It also smoke-tests the metrics endpoint both ways: the default
# Prometheus text exposition must carry well-formed # TYPE lines and a
# populated request-duration histogram, and Accept: application/json must
# still serve the legacy JSON snapshot.
#
# Phase 2 is the circuit-breaker drill: a second server instance starts
# with -chaos-kernel-errors so every kernel computation fails, kernel-backed
# requests trip both route breakers, and the script asserts the full
# degraded-mode contract — /healthz says "degraded" (still 200), /v1/plan
# answers bound-model estimates with "degraded": true, /v1/sweep sheds 503
# with a positive Retry-After — then waits out the open window and proves
# the service heals: kernel-free probes close both breakers, /healthz says
# "ok" again, and the breaker gauges read "closed".
#
# The p50/p99/shed-rate summary lands in BENCH_PR<n>.json at the repo root,
# the same perf-trajectory record bench.sh feeds.
#
# Usage:
#   scripts/loadtest.sh                       # writes BENCH_PR7.json
#   OUT=/tmp/smoke.json scripts/loadtest.sh   # CI smoke, no baseline write
#   REQUESTS=20 CONCURRENCY=4 scripts/loadtest.sh

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR7.json}"
PORT="${PORT:-18080}"
REQUESTS="${REQUESTS:-60}"
CONCURRENCY="${CONCURRENCY:-8}"
MAX_INFLIGHT="${MAX_INFLIGHT:-2}"
DRAIN_TIMEOUT="${DRAIN_TIMEOUT:-10s}"

if [ -e "$OUT" ]; then
    echo "loadtest.sh: $OUT already exists (a committed perf baseline)." >&2
    echo "loadtest.sh: pass OUT=<path> to record this run without clobbering it." >&2
    exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/dmls-serve" ./cmd/dmls-serve
go build -o "$workdir/loadtest" ./scripts/loadtest

"$workdir/dmls-serve" -addr "127.0.0.1:$PORT" -max-inflight "$MAX_INFLIGHT" \
    -drain-timeout "$DRAIN_TIMEOUT" 2>"$workdir/serve.log" &
server_pid=$!
# Kill the server on any failure path so the trap's rm never races a writer.
trap 'kill "$server_pid" 2>/dev/null || true; wait "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

base="http://127.0.0.1:$PORT"
for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$base/healthz" 2>/dev/null; then break; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "loadtest.sh: dmls-serve died on startup:" >&2
        cat "$workdir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS -o /dev/null "$base/healthz" || { echo "loadtest.sh: server never became healthy" >&2; exit 1; }

"$workdir/loadtest" -base "$base" -suites examples/suites \
    -requests "$REQUESTS" -concurrency "$CONCURRENCY" \
    -server-max-inflight "$MAX_INFLIGHT" >"$workdir/summary.json"

summary=$(cat "$workdir/summary.json")
shed=$(echo "$summary" | jq -r .shed)
if [ "$shed" -eq 0 ]; then
    echo "loadtest.sh: expected admission control to shed at this concurrency, but shed=0" >&2
    exit 1
fi

# Metrics smoke, both content negotiations, scraped while the server is
# still warm from the storm:
#   - default GET /metrics is Prometheus text: # TYPE lines present and
#     well-formed, and the per-route duration histogram actually populated;
#   - Accept: application/json still serves the legacy JSON snapshot.
curl -fsS "$base/metrics" >"$workdir/metrics.prom"
if ! grep -q '^# TYPE dmls_requests_total counter$' "$workdir/metrics.prom"; then
    echo "loadtest.sh: Prometheus exposition missing dmls_requests_total TYPE line:" >&2
    cat "$workdir/metrics.prom" >&2
    exit 1
fi
if awk '/^# TYPE /{ if (NF != 4 || ($4 != "counter" && $4 != "gauge" && $4 != "histogram")) bad=1 } END { exit bad }' "$workdir/metrics.prom"; then :; else
    echo "loadtest.sh: malformed # TYPE line in Prometheus exposition:" >&2
    grep '^# TYPE' "$workdir/metrics.prom" >&2
    exit 1
fi
dur_count=$(awk '$1 ~ /^dmls_request_duration_seconds_count/ { sum += $2 } END { print sum + 0 }' "$workdir/metrics.prom")
if [ "$dur_count" -eq 0 ]; then
    echo "loadtest.sh: request-duration histogram empty after the load storm" >&2
    exit 1
fi
json_requests=$(curl -fsS -H 'Accept: application/json' "$base/metrics" | jq -r .requests_total)
if [ "$json_requests" -le 0 ]; then
    echo "loadtest.sh: legacy JSON metrics unreadable or empty (requests_total=$json_requests)" >&2
    exit 1
fi
echo "loadtest.sh: metrics smoke ok (duration observations: $dur_count, requests_total: $json_requests)" >&2

# Clean drain: SIGTERM, then the server must exit 0 inside the drain window.
kill -TERM "$server_pid"
drain_rc=0
wait "$server_pid" || drain_rc=$?
if [ "$drain_rc" -ne 0 ]; then
    echo "loadtest.sh: dmls-serve did not drain cleanly (exit $drain_rc):" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
if ! grep -q "drained" "$workdir/serve.log"; then
    echo "loadtest.sh: no drain notice in the server log:" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
trap 'rm -rf "$workdir"' EXIT

# ---------------------------------------------------------------------------
# Phase 2: circuit-breaker trip-and-recover drill.
#
# A fresh server instance where every kernel computation fails with a
# transient fault (-chaos-kernel-errors 999 outlasts every retry layer), a
# small breaker window so two failed requests per route trip it, and an
# open period long enough to assert the degraded contract before the
# half-open probe is admitted.
BREAKER_OPEN_FOR="${BREAKER_OPEN_FOR:-3s}"
PORT2=$((PORT + 1))
base2="http://127.0.0.1:$PORT2"

# The tripwire: a kernel-backed mrf suite. Small graph so the doomed
# retries burn milliseconds, not seconds.
cat >"$workdir/chaos-suite.json" <<'EOF'
{
  "name": "breaker drill: kernel-backed graph",
  "scenarios": [
    {
      "name": "bp dns, chaos target",
      "workload": {
        "family": "mrf",
        "graph": { "family": "dns", "vertices": 1200, "seed": 7 },
        "states": 2,
        "trials": 2
      },
      "hardware": { "preset": "dl980-core" },
      "protocol": { "kind": "shared-memory" },
      "max_workers": 4
    }
  ]
}
EOF

# The probe: a kernel-free, convergence-bearing suite. Closed-form, so it
# succeeds even under total kernel chaos — it exercises the degraded plan
# path (bound models exist) and later closes the breakers as the half-open
# probe.
cat >"$workdir/probe-suite.json" <<'EOF'
{
  "name": "breaker drill: kernel-free probe",
  "scenarios": [
    {
      "name": "conv ANN on K40s, 1 GbE two-stage tree",
      "workload": {
        "family": "gd-weak",
        "flops_per_example": 15e9,
        "batch_size": 128,
        "parameters": 25e6,
        "precision_bits": 32
      },
      "hardware": { "preset": "nvidia-k40" },
      "protocol": { "kind": "two-stage-tree", "bandwidth_bits_per_sec": 1e9 },
      "convergence": { "rule": "diminishing", "base_iterations": 50000, "critical_batch_growth": 32 },
      "max_workers": 128
    }
  ]
}
EOF
jq -c '{suite: .}' "$workdir/chaos-suite.json" >"$workdir/chaos-req.json"
jq -c '{suite: .}' "$workdir/probe-suite.json" >"$workdir/probe-req.json"
jq -c '{suite: .}' examples/suites/fig2-bandwidth-sweep.json >"$workdir/sweep-req.json"

"$workdir/dmls-serve" -addr "127.0.0.1:$PORT2" -chaos-kernel-errors 999 \
    -breaker-window 4 -breaker-min-samples 2 -breaker-failure-ratio 0.5 \
    -breaker-open-for "$BREAKER_OPEN_FOR" 2>"$workdir/serve2.log" &
server2_pid=$!
trap 'kill "$server2_pid" 2>/dev/null || true; wait "$server2_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$base2/healthz" 2>/dev/null; then break; fi
    if ! kill -0 "$server2_pid" 2>/dev/null; then
        echo "loadtest.sh: chaos dmls-serve died on startup:" >&2
        cat "$workdir/serve2.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS -o /dev/null "$base2/healthz" || { echo "loadtest.sh: chaos server never became healthy" >&2; exit 1; }

# Trip both breakers: two kernel-backed requests per route, every kernel
# attempt failing. Plans fail in-body (200 + error plans), sweeps fail
# in-body too — both Record(failure) on their route's breaker.
for _ in 1 2; do
    curl -s -o /dev/null -X POST -d @"$workdir/chaos-req.json" "$base2/v1/plan"
done
for _ in 1 2; do
    curl -s -o /dev/null -X POST -d @"$workdir/chaos-req.json" "$base2/v1/sweep"
done

# Open-state contract. /healthz: degraded but alive (200).
hz=$(curl -fsS "$base2/healthz")
if [ "$hz" != "degraded" ]; then
    echo "loadtest.sh: healthz should report degraded while breakers are open, got: $hz" >&2
    exit 1
fi

# /v1/plan: answered degraded — bound-model estimates, flagged as such.
curl -fsS -X POST -d @"$workdir/probe-req.json" "$base2/v1/plan" >"$workdir/degraded-plan.json"
if [ "$(jq -r .degraded "$workdir/degraded-plan.json")" != "true" ]; then
    echo "loadtest.sh: open plan breaker should serve degraded plans:" >&2
    cat "$workdir/degraded-plan.json" >&2
    exit 1
fi
if [ "$(jq -r '.plans[0].bound_time_seconds > 0' "$workdir/degraded-plan.json")" != "true" ]; then
    echo "loadtest.sh: degraded plan carries no bound-model estimate:" >&2
    cat "$workdir/degraded-plan.json" >&2
    exit 1
fi

# /v1/sweep: shed with 503 and a positive integer Retry-After.
sweep_code=$(curl -s -o /dev/null -w '%{http_code}' -D "$workdir/sweep-headers" \
    -X POST -d @"$workdir/sweep-req.json" "$base2/v1/sweep")
if [ "$sweep_code" != "503" ]; then
    echo "loadtest.sh: open sweep breaker should shed 503, got $sweep_code" >&2
    exit 1
fi
retry_after=$(awk 'tolower($1) == "retry-after:" { gsub("\r", "", $2); print $2 }' "$workdir/sweep-headers")
case "$retry_after" in
    ''|*[!0-9]*) echo "loadtest.sh: 503 shed carries no integer Retry-After (got '$retry_after')" >&2; exit 1 ;;
esac
if [ "$retry_after" -lt 1 ]; then
    echo "loadtest.sh: Retry-After must be >= 1, got $retry_after" >&2
    exit 1
fi

# Metrics while degraded: breakers open, degraded counters moving, and the
# chaos faults actually went through the retry path first.
curl -fsS -H 'Accept: application/json' "$base2/metrics" >"$workdir/metrics2-open.json"
for check in \
    '.breaker_plan == "open"' \
    '.breaker_sweep == "open"' \
    '.degraded_plans_total >= 1' \
    '.degraded_shed_total >= 1' \
    '.retries_total > 0'; do
    if [ "$(jq -r "$check" "$workdir/metrics2-open.json")" != "true" ]; then
        echo "loadtest.sh: degraded-state metrics check failed: $check" >&2
        cat "$workdir/metrics2-open.json" >&2
        exit 1
    fi
done
echo "loadtest.sh: breakers tripped — healthz degraded, plans degraded, sweeps shed with Retry-After $retry_after" >&2

# Recovery: wait out the open period, then send kernel-free probes. The
# half-open breakers admit one probe each; closed-form suites succeed even
# under chaos, so both breakers close and the service heals.
sleep "$(echo "$BREAKER_OPEN_FOR" | sed 's/s$//').2"
curl -fsS -X POST -d @"$workdir/probe-req.json" "$base2/v1/plan" >"$workdir/recovered-plan.json"
if [ "$(jq -r '.degraded == true' "$workdir/recovered-plan.json")" = "true" ]; then
    echo "loadtest.sh: plan still degraded after the breaker's open period:" >&2
    cat "$workdir/recovered-plan.json" >&2
    exit 1
fi
recovered_code=$(curl -s -o /dev/null -w '%{http_code}' \
    -X POST -d @"$workdir/sweep-req.json" "$base2/v1/sweep")
if [ "$recovered_code" != "200" ]; then
    echo "loadtest.sh: sweep still shed after the breaker's open period (got $recovered_code)" >&2
    exit 1
fi
hz=$(curl -fsS "$base2/healthz")
if [ "$hz" != "ok" ]; then
    echo "loadtest.sh: healthz should be back to ok after recovery, got: $hz" >&2
    exit 1
fi
curl -fsS -H 'Accept: application/json' "$base2/metrics" >"$workdir/metrics2-closed.json"
for check in '.breaker_plan == "closed"' '.breaker_sweep == "closed"'; do
    if [ "$(jq -r "$check" "$workdir/metrics2-closed.json")" != "true" ]; then
        echo "loadtest.sh: post-recovery metrics check failed: $check" >&2
        cat "$workdir/metrics2-closed.json" >&2
        exit 1
    fi
done
echo "loadtest.sh: breakers recovered — healthz ok, both breaker gauges closed" >&2

kill -TERM "$server2_pid"
drain2_rc=0
wait "$server2_pid" || drain2_rc=$?
if [ "$drain2_rc" -ne 0 ]; then
    echo "loadtest.sh: chaos dmls-serve did not drain cleanly (exit $drain2_rc):" >&2
    cat "$workdir/serve2.log" >&2
    exit 1
fi
trap 'rm -rf "$workdir"' EXIT

echo "$summary" | jq '. + {"clean_drain": true, "breaker_drill": "pass"}' >"$OUT"
echo "loadtest.sh: wrote $OUT" >&2
cat "$OUT"
