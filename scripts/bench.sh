#!/usr/bin/env bash
# bench.sh — run the PR's headline benchmarks and record them as JSON.
#
# Emits BENCH_PR4.json at the repo root: one object per benchmark with
# ns/op, B/op and allocs/op, the start of the repo's perf-trajectory
# record (later PRs append BENCH_PR<n>.json files of the same shape and
# diff against earlier ones).
#
# Usage:
#   scripts/bench.sh                 # default benchmark set
#   BENCH='Suite|MonteCarlo' scripts/bench.sh   # custom -bench regexp
#   OUT=custom.json scripts/bench.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkSweepGridColdVsWarm|BenchmarkPlanGridWarm}"
if [ -z "${OUT:-}" ] && [ -e BENCH_PR4.json ]; then
    echo "bench.sh: BENCH_PR4.json already exists (the committed perf baseline)." >&2
    echo "bench.sh: pass OUT=BENCH_PR<n>.json to record this run without clobbering it." >&2
    exit 1
fi
OUT="${OUT:-BENCH_PR4.json}"

raw=$(go test -run XXX -bench "$BENCH" -benchmem .)
echo "$raw" >&2

echo "$raw" | awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)      # strip the GOMAXPROCS suffix
    iters = $2
    ns = $3                        # "<ns> ns/op"
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { if (n) printf "\n"; print "]" }
' > "$OUT"

echo "wrote $OUT:" >&2
cat "$OUT"
