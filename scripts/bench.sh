#!/usr/bin/env bash
# bench.sh — run the PR's headline benchmarks and record them as JSON.
#
# Emits BENCH_PR<n>.json at the repo root: one object per benchmark with
# ns/op, B/op and allocs/op — the repo's perf-trajectory record (each PR
# with a headline benchmark commits a new BENCH_PR<n>.json of the same
# shape and diffs against earlier ones).
#
# Usage:
#   scripts/bench.sh                 # default benchmark set
#   BENCH='Suite|MonteCarlo' scripts/bench.sh   # custom -bench regexp
#   OUT=custom.json scripts/bench.sh
#   BENCHTIME=10x scripts/bench.sh   # forwarded as -benchtime for stability

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkSweepGridColdVsWarm|BenchmarkPlanGridWarm|BenchmarkSweepStreamPruned|BenchmarkSweepGridTracedVsUntraced|BenchmarkKernelBatchedVsPerWorker|BenchmarkSweepCurveCold64}"
OUT="${OUT:-BENCH_PR10.json}"
if [ -e "$OUT" ]; then
    echo "bench.sh: $OUT already exists (a committed perf baseline)." >&2
    echo "bench.sh: pass OUT=BENCH_PR<n>.json to record this run without clobbering it." >&2
    exit 1
fi

raw=$(go test -run XXX -bench "$BENCH" -benchmem ${BENCHTIME:+-benchtime "$BENCHTIME"} . ./internal/partition)
echo "$raw" >&2

echo "$raw" | awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)      # strip the GOMAXPROCS suffix
    iters = $2
    ns = $3                        # "<ns> ns/op"
    bytes = ""; allocs = ""; rng = ""
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")        bytes  = $(i - 1)
        if ($i == "allocs/op")   allocs = $(i - 1)
        if ($i == "rngbytes/op") rng    = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (rng != "")    printf ", \"rngbytes_per_op\": %s", rng
    printf "}"
}
END { if (n) printf "\n"; print "]" }
' > "$OUT"

# Histogram summary: run the server briefly, fire a few plan requests, and
# record the request-duration histogram's p50/p99 from a live Prometheus
# scrape (scripts/histsummary) alongside the Go benchmarks. Skippable with
# NOHIST=1 for environments without a free port.
if [ -z "${NOHIST:-}" ]; then
    workdir=$(mktemp -d)
    go build -o "$workdir/dmls-serve" ./cmd/dmls-serve
    go build -o "$workdir/histsummary" ./scripts/histsummary
    port="${PORT:-18081}"
    "$workdir/dmls-serve" -addr "127.0.0.1:$port" 2>"$workdir/serve.log" &
    server_pid=$!
    trap 'kill "$server_pid" 2>/dev/null || true; wait "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
    base="http://127.0.0.1:$port"
    for _ in $(seq 1 100); do
        if curl -fsS -o /dev/null "$base/healthz" 2>/dev/null; then break; fi
        sleep 0.1
    done
    body=$(jq -n --slurpfile s examples/suites/plan-tta.json '{suite: $s[0], adaptive: true}')
    for _ in $(seq 1 8); do
        curl -fsS -o /dev/null -X POST -H 'Content-Type: application/json' \
            -d "$body" "$base/v1/plan"
    done
    hist=$(curl -fsS "$base/metrics" | "$workdir/histsummary" -metric dmls_request_duration_seconds)
    kill -TERM "$server_pid"; wait "$server_pid" || true
    trap 'rm -rf "$workdir"' EXIT
    jq --argjson hist "$hist" '. + [$hist]' "$OUT" > "$OUT.tmp" && mv "$OUT.tmp" "$OUT"
fi

echo "wrote $OUT:" >&2
cat "$OUT"
