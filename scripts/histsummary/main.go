// Command histsummary reads a Prometheus text exposition on stdin, pulls
// one histogram family out of it (all label sets summed), and prints its
// p50/p90/p99 as a small JSON object — the shape scripts/bench.sh appends
// to BENCH_PR<n>.json so a scrape of the live server's request-duration
// histogram lands in the same perf-trajectory record as the Go benchmarks.
//
// Usage:
//
//	curl -s localhost:8080/metrics | histsummary -metric dmls_request_duration_seconds
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"dmlscale/internal/obs"
)

func main() {
	metric := flag.String("metric", "dmls_request_duration_seconds", "histogram family to summarize")
	flag.Parse()

	snap, err := parseHistogram(os.Stdin, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "histsummary: %v\n", err)
		os.Exit(1)
	}
	out := map[string]any{
		"name":   *metric,
		"count":  snap.Count,
		"sum":    snap.Sum,
		"p50_ms": 1000 * snap.Quantile(0.50),
		"p90_ms": 1000 * snap.Quantile(0.90),
		"p99_ms": 1000 * snap.Quantile(0.99),
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "histsummary: %v\n", err)
		os.Exit(1)
	}
}

// parseHistogram folds every <metric>_bucket sample (across all label
// sets) into one obs.HistogramSnapshot. Bucket samples are cumulative per
// label set, so per-le cumulative counts add across sets and the merged
// series is de-cumulated at the end.
func parseHistogram(r *os.File, metric string) (obs.HistogramSnapshot, error) {
	cum := map[float64]int64{} // le → summed cumulative count
	var sum float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, metric+"_bucket{"):
			le, count, err := parseBucket(line)
			if err != nil {
				return obs.HistogramSnapshot{}, fmt.Errorf("%v in %q", err, line)
			}
			cum[le] += count
		case strings.HasPrefix(line, metric+"_sum"):
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				return obs.HistogramSnapshot{}, fmt.Errorf("bad _sum line %q", line)
			}
			sum += v
		}
	}
	if err := sc.Err(); err != nil {
		return obs.HistogramSnapshot{}, err
	}
	if len(cum) == 0 {
		return obs.HistogramSnapshot{}, fmt.Errorf("no %s_bucket samples on stdin", metric)
	}

	les := make([]float64, 0, len(cum))
	hasInf := false
	for le := range cum {
		if le > 1e308 {
			hasInf = true
			continue
		}
		les = append(les, le)
	}
	sort.Float64s(les)
	snap := obs.HistogramSnapshot{
		Bounds: les,
		Counts: make([]int64, len(les)+1),
		Sum:    sum,
	}
	prev := int64(0)
	for i, le := range les {
		snap.Counts[i] = cum[le] - prev
		prev = cum[le]
	}
	if hasInf {
		var inf float64
		for le := range cum {
			if le > 1e308 {
				inf = le
			}
		}
		snap.Counts[len(les)] = cum[inf] - prev
	}
	for _, c := range snap.Counts {
		snap.Count += c
	}
	return snap, nil
}

// parseBucket extracts the le bound and the cumulative count from one
// _bucket sample line.
func parseBucket(line string) (le float64, count int64, err error) {
	i := strings.Index(line, `le="`)
	if i < 0 {
		return 0, 0, fmt.Errorf("no le label")
	}
	rest := line[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, 0, fmt.Errorf("unterminated le label")
	}
	leStr := rest[:j]
	if leStr == "+Inf" {
		le = math.Inf(1)
	} else {
		le, err = strconv.ParseFloat(leStr, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad le %q", leStr)
		}
	}
	fields := strings.Fields(line)
	count, err = strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad count")
	}
	return le, count, nil
}
