#!/usr/bin/env bash
# resume_smoke.sh — crash-safety drill for checkpointed sweeps, end to end.
#
# Builds dmls-sweep, generates a kernel-heavy Monte-Carlo grid (48 mrf
# scenarios with distinct graph seeds, several seconds of work at
# -parallel 2), then:
#
#   1. records the uninterrupted run's JSON output as ground truth;
#   2. starts a checkpointed run and SIGKILLs it mid-grid — the kill fires
#      once the journal holds a handful of cell records, so it lands while
#      most of the grid is still unevaluated;
#   3. resumes from the journal and asserts the run really resumed (the
#      "resuming from" notice, a replay count strictly between 0 and the
#      grid size, and "resumed from checkpoint" in the -stats block);
#   4. diffs the resumed output against ground truth — byte-identical, or
#      the checkpoint replayed wrong.
#
# The in-process variant of this drill lives in internal/resume's
# TestKillMidGridResume; this script is the real-signal version: an actual
# SIGKILL against a live process, fsync'd journal and all.
#
# Usage:
#   scripts/resume_smoke.sh

set -euo pipefail
cd "$(dirname "$0")/.."

CELLS=48
KILL_AFTER_CELLS="${KILL_AFTER_CELLS:-8}"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/dmls-sweep" ./cmd/dmls-sweep

# A grid where every scenario is a distinct kernel coordinate (different
# graph seeds), so the journal accumulates both cell and kernel records and
# a resume has real Monte-Carlo work to reuse.
{
    echo '{ "name": "resume smoke grid", "scenarios": ['
    for i in $(seq 1 "$CELLS"); do
        sep=","
        [ "$i" -eq "$CELLS" ] && sep=""
        printf '{"name":"bp dns seed %d","workload":{"family":"mrf","graph":{"family":"dns","vertices":200000,"seed":%d},"states":2,"trials":6},"hardware":{"preset":"dl980-core"},"protocol":{"kind":"shared-memory"},"max_workers":8}%s\n' "$i" "$i" "$sep"
    done
    echo ']}'
} >"$workdir/suite.json"

# Ground truth: the uninterrupted, checkpoint-free run.
"$workdir/dmls-sweep" -suite "$workdir/suite.json" -format json >"$workdir/want.json"

# Checkpointed run, killed mid-grid. -parallel 2 stretches the grid to a
# few seconds so the kill window is wide; the poll fires SIGKILL as soon as
# the journal holds KILL_AFTER_CELLS cell records.
ckpt="$workdir/run.ckpt"
"$workdir/dmls-sweep" -suite "$workdir/suite.json" -format json -parallel 2 \
    -checkpoint "$ckpt" >"$workdir/killed.json" 2>"$workdir/killed.log" &
victim=$!
killed=0
for _ in $(seq 1 600); do
    if ! kill -0 "$victim" 2>/dev/null; then break; fi
    n=$(grep -c '"k":"cell"' "$ckpt" 2>/dev/null || true)
    if [ "${n:-0}" -ge "$KILL_AFTER_CELLS" ]; then
        kill -KILL "$victim"
        killed=1
        break
    fi
    sleep 0.05
done
wait "$victim" 2>/dev/null || true
if [ "$killed" -ne 1 ]; then
    echo "resume_smoke.sh: the run finished before SIGKILL could land mid-grid" >&2
    exit 1
fi
journaled=$(grep -c '"k":"cell"' "$ckpt")
if [ "$journaled" -ge "$CELLS" ]; then
    echo "resume_smoke.sh: journal already complete ($journaled cells); kill was not mid-grid" >&2
    exit 1
fi
echo "resume_smoke.sh: SIGKILLed mid-grid with $journaled of $CELLS cells journaled" >&2

# Resume: replay the journal, finish the grid, and the merged output must
# be byte-identical to the uninterrupted run.
"$workdir/dmls-sweep" -suite "$workdir/suite.json" -format json -stats \
    -checkpoint "$ckpt" -resume >"$workdir/got.json" 2>"$workdir/resume.log"

if ! grep -q "resuming from" "$workdir/resume.log"; then
    echo "resume_smoke.sh: resumed run never printed its replay notice:" >&2
    cat "$workdir/resume.log" >&2
    exit 1
fi
replayed=$(sed -n 's/.*resuming from .*: \([0-9][0-9]*\) cells.*/\1/p' "$workdir/resume.log")
if [ -z "$replayed" ] || [ "$replayed" -le 0 ] || [ "$replayed" -ge "$CELLS" ]; then
    echo "resume_smoke.sh: replay count '$replayed' not strictly inside (0, $CELLS)" >&2
    cat "$workdir/resume.log" >&2
    exit 1
fi
if ! grep -q "resumed from checkpoint" "$workdir/resume.log"; then
    echo "resume_smoke.sh: -stats block does not report resumed cells:" >&2
    cat "$workdir/resume.log" >&2
    exit 1
fi
if ! cmp -s "$workdir/want.json" "$workdir/got.json"; then
    echo "resume_smoke.sh: resumed output differs from the uninterrupted run:" >&2
    diff "$workdir/want.json" "$workdir/got.json" | head -40 >&2
    exit 1
fi

echo "resume_smoke.sh: ok — killed at $journaled cells, resumed $replayed, output byte-identical" >&2
