// Command loadtest replays a query mix from the example suites against a
// running dmls-serve and summarizes what the service did under pressure:
// request latencies (p50/p99 of successful requests), how much load was
// shed with 429, and whether /healthz answered throughout. scripts/
// loadtest.sh drives it and records the summary as BENCH_PR<n>.json.
//
// Exit is non-zero when the service misbehaved: any request neither served
// nor cleanly shed, zero successful requests, or a failed liveness probe.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type summary struct {
	Benchmark       string  `json:"benchmark"`
	Requests        int     `json:"requests"`
	Concurrency     int     `json:"concurrency"`
	MaxInFlight     int     `json:"server_max_inflight"`
	OK              int64   `json:"ok"`
	Shed            int64   `json:"shed"`
	Errors          int64   `json:"errors"`
	ShedRate        float64 `json:"shed_rate"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	HealthzFailures int64   `json:"healthz_failures"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
}

func main() {
	var (
		base        = flag.String("base", "http://127.0.0.1:18080", "dmls-serve base URL")
		suitesDir   = flag.String("suites", "examples/suites", "directory of suite JSON files to replay")
		requests    = flag.Int("requests", 60, "total requests to fire")
		concurrency = flag.Int("concurrency", 8, "concurrent client workers")
		maxInFlight = flag.Int("server-max-inflight", 0, "server's -max-inflight, echoed into the summary")
	)
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*suitesDir, "*.json"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "loadtest: no suites under %s\n", *suitesDir)
		os.Exit(1)
	}
	sort.Strings(paths)
	// The replayed mix: every example suite as both a sweep and a plan
	// request, round-robined across the request budget.
	var bodies []struct{ path, body string }
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
			os.Exit(1)
		}
		doc := string(bytes.TrimSpace(raw))
		bodies = append(bodies,
			struct{ path, body string }{"/v1/sweep", `{"suite": ` + doc + `}`},
			struct{ path, body string }{"/v1/plan", `{"suite": ` + doc + `, "adaptive": true}`},
		)
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	var ok, shed, errs, healthzFailures atomic.Int64
	latencies := make([]time.Duration, *requests)
	var latMu sync.Mutex
	var latN int

	// Liveness probes run through the whole storm: shedding is fine,
	// failing to answer /healthz is not.
	probeStop := make(chan struct{})
	var probeWg sync.WaitGroup
	probeWg.Add(1)
	go func() {
		defer probeWg.Done()
		for {
			select {
			case <-probeStop:
				return
			default:
			}
			resp, err := client.Get(*base + "/healthz")
			if err != nil {
				healthzFailures.Add(1)
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					healthzFailures.Add(1)
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, *concurrency)
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			mix := bodies[i%len(bodies)]
			t0 := time.Now()
			resp, err := client.Post(*base+mix.path, "application/json", bytes.NewReader([]byte(mix.body)))
			if err != nil {
				errs.Add(1)
				fmt.Fprintf(os.Stderr, "loadtest: request %d: %v\n", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case 200:
				ok.Add(1)
				latMu.Lock()
				latencies[latN] = time.Since(t0)
				latN++
				latMu.Unlock()
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				errs.Add(1)
				fmt.Fprintf(os.Stderr, "loadtest: request %d (%s): status %d\n", i, mix.path, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(probeStop)
	probeWg.Wait()

	lats := latencies[:latN]
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}

	s := summary{
		Benchmark:       "loadtest_serve_query_mix",
		Requests:        *requests,
		Concurrency:     *concurrency,
		MaxInFlight:     *maxInFlight,
		OK:              ok.Load(),
		Shed:            shed.Load(),
		Errors:          errs.Load(),
		ShedRate:        float64(shed.Load()) / float64(*requests),
		P50Ms:           pct(0.50),
		P99Ms:           pct(0.99),
		HealthzFailures: healthzFailures.Load(),
		ElapsedSeconds:  elapsed.Seconds(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(s)

	if s.Errors > 0 || s.OK == 0 || s.HealthzFailures > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: FAILED: ok=%d shed=%d errors=%d healthz_failures=%d\n",
			s.OK, s.Shed, s.Errors, s.HealthzFailures)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadtest: ok=%d shed=%d (rate %.2f) p50=%.1fms p99=%.1fms healthz clean\n",
		s.OK, s.Shed, s.ShedRate, s.P50Ms, s.P99Ms)
}
