package dmlscale_test

import (
	"math"
	"testing"

	"dmlscale"
	"dmlscale/internal/bp"
	"dmlscale/internal/graph"
	"dmlscale/internal/scenario"
)

func fig2Workload() dmlscale.Workload {
	return dmlscale.Workload{
		Name:            "fully connected ANN",
		FlopsPerExample: 6 * 12e6,
		BatchSize:       60000,
		ModelBits:       64 * 12e6,
	}
}

func TestGradientDescentFacade(t *testing.T) {
	model, err := dmlscale.GradientDescent(fig2Workload(), dmlscale.XeonE31240(), dmlscale.SparkComm())
	if err != nil {
		t.Fatal(err)
	}
	n, s, err := model.OptimalWorkers(13)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("optimal workers = %d, want the paper's 9", n)
	}
	if s < 3.5 || s > 5 {
		t.Errorf("peak speedup = %v, want ≈ 4.1", s)
	}
}

func TestGradientDescentWeakFacade(t *testing.T) {
	w := dmlscale.Workload{
		Name:            "inception",
		FlopsPerExample: 3 * 5e9,
		BatchSize:       128,
		ModelBits:       32 * 25e6,
	}
	model, err := dmlscale.GradientDescentWeak(w, dmlscale.NvidiaK40(),
		dmlscale.TwoStageTreeComm(1e9))
	if err != nil {
		t.Fatal(err)
	}
	s := model.SpeedupRelative(50, 100)
	if s < 1.4 || s > 2.1 {
		t.Errorf("s(100 vs 50) = %v, want ≈ 1.7", s)
	}
}

func TestGraphInferenceFacade(t *testing.T) {
	degrees, err := graph.ScaledDNSGraph(8000).Degrees(5)
	if err != nil {
		t.Fatal(err)
	}
	model, err := dmlscale.GraphInference("bp", degrees, bp.OpsPerEdge(2),
		dmlscale.Flops(0.6e9), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s := model.Speedup(1); math.Abs(s-1) > 1e-9 {
		t.Errorf("s(1) = %v", s)
	}
	s8 := model.Speedup(8)
	if s8 <= 1 || s8 > 8 {
		t.Errorf("s(8) = %v, want in (1, 8]", s8)
	}
	// Caching: repeated evaluation is consistent.
	if model.Speedup(8) != s8 {
		t.Error("cached speedup changed between calls")
	}
}

func TestCommFacades(t *testing.T) {
	protocols := []dmlscale.CommModel{
		dmlscale.LinearComm(1e9),
		dmlscale.TreeComm(1e9),
		dmlscale.TwoStageTreeComm(1e9),
		dmlscale.SparkComm(),
		dmlscale.SparkCommOn(10e9),
		dmlscale.RingAllReduceComm(1e9),
		dmlscale.PipelinedTreeComm(1e9, 32),
		dmlscale.SharedMemoryComm(),
	}
	for _, p := range protocols {
		if p.Name() == "" {
			t.Error("protocol without a name")
		}
		if d := p.Time(1e6, 4); d < 0 {
			t.Errorf("%s: negative time", p.Name())
		}
	}
	// Shared memory is free.
	if d := dmlscale.SharedMemoryComm().Time(1e9, 64); d != 0 {
		t.Errorf("shared memory time = %v", d)
	}
}

func TestWorkersHelper(t *testing.T) {
	ws := dmlscale.Workers(1, 5)
	if len(ws) != 5 || ws[0] != 1 || ws[4] != 5 {
		t.Errorf("Workers(1,5) = %v", ws)
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	ids := dmlscale.ExperimentIDs()
	if len(ids) < 6 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	found := false
	for _, id := range ids {
		if id == "tab1" {
			found = true
		}
	}
	if !found {
		t.Error("tab1 not registered")
	}
	res, err := dmlscale.RunExperiment("tab1")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "tab1" || res.Table == nil {
		t.Errorf("RunExperiment(tab1) = %+v", res)
	}
	if _, err := dmlscale.RunExperiment("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestGraphInferenceRejectsDegenerateInputs(t *testing.T) {
	if _, err := dmlscale.GraphInference("bad", nil, 14, 1e9, 2, 0); err == nil {
		t.Error("empty degree sequence accepted")
	}
	if _, err := dmlscale.GraphInference("bad", []int32{1, 2}, 0, 1e9, 2, 0); err == nil {
		t.Error("zero ops per edge accepted")
	}
	if _, err := dmlscale.GraphInference("bad", []int32{1, 2}, 14, 1e9, 0, 0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRegistryCatalogFacades(t *testing.T) {
	if len(dmlscale.ProtocolKinds()) < 10 {
		t.Errorf("protocol kinds = %v", dmlscale.ProtocolKinds())
	}
	if len(dmlscale.HardwarePresets()) < 3 {
		t.Errorf("hardware presets = %v", dmlscale.HardwarePresets())
	}
	if len(dmlscale.WorkloadFamilies()) != 5 {
		t.Errorf("workload families = %v", dmlscale.WorkloadFamilies())
	}
	if len(dmlscale.Architectures()) < 5 {
		t.Errorf("architectures = %v", dmlscale.Architectures())
	}
	if len(dmlscale.GraphFamilies()) < 4 {
		t.Errorf("graph families = %v", dmlscale.GraphFamilies())
	}
	p, err := dmlscale.Protocol("ring", 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Time(1e9, 4) != 1.5 {
		t.Errorf("ring t = %v, want 1.5", p.Time(1e9, 4))
	}
	if _, err := dmlscale.Protocol("warp", 1e9); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestSuiteFacade(t *testing.T) {
	suite := dmlscale.Suite{
		Name: "facade suite",
		Sweep: &dmlscale.Sweep{
			Base:                 scenario.Fig2(),
			BandwidthsBitsPerSec: []float64{1e9, 10e9},
			Protocols:            []string{"spark", "ring", "linear", "two-stage-tree"},
		},
	}
	results, err := dmlscale.EvaluateSuite(suite, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("suite produced %d results, want 8", len(results))
	}
	for _, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v", res.Scenario.Name, res.Err)
			continue
		}
		if res.OptimalN < 1 || res.PeakSpeedup < 1 {
			t.Errorf("%s: optimum %d (%.2f×)", res.Scenario.Name, res.OptimalN, res.PeakSpeedup)
		}
	}
	// Faster links push the optimum out (or at least never pull it in):
	// compare the 1 and 10 Gbit/s spark variants.
	var slow, fast dmlscale.SuiteResult
	for _, res := range results {
		if res.Scenario.Protocol.Kind != "spark" {
			continue
		}
		if res.Scenario.Protocol.BandwidthBitsPerSec == 1e9 {
			slow = res
		} else {
			fast = res
		}
	}
	if fast.PeakSpeedup < slow.PeakSpeedup {
		t.Errorf("10 Gbit/s peak %.2f below 1 Gbit/s peak %.2f", fast.PeakSpeedup, slow.PeakSpeedup)
	}
}

func TestHardwareCatalogFacade(t *testing.T) {
	if f := float64(dmlscale.XeonE31240().EffectiveFlops()); math.Abs(f-0.8*105.6e9) > 1 {
		t.Errorf("Xeon effective flops = %v", f)
	}
	if f := float64(dmlscale.NvidiaK40().EffectiveFlops()); math.Abs(f-0.5*4.28e12) > 1 {
		t.Errorf("K40 effective flops = %v", f)
	}
	if dmlscale.GigabitEthernet().Bandwidth != 1e9 {
		t.Error("gigabit bandwidth wrong")
	}
}
