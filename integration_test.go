package dmlscale_test

// Integration tests exercising the substrates together: the cost counter
// feeding the analytic model, real training validating the data-parallel
// assumptions the model rests on, and the simulators validating the model
// the way the paper's experiments do.

import (
	"math"
	"testing"

	"dmlscale"
	"dmlscale/internal/bp"
	"dmlscale/internal/comm"
	"dmlscale/internal/dataset"
	"dmlscale/internal/gd"
	"dmlscale/internal/graph"
	"dmlscale/internal/hardware"
	"dmlscale/internal/metrics"
	"dmlscale/internal/mrf"
	"dmlscale/internal/nn"
	"dmlscale/internal/nncost"
	"dmlscale/internal/scenario"
	"dmlscale/internal/sparksim"
	"dmlscale/internal/units"
)

// TestCostCounterFeedsModel: deriving the Fig. 2 workload from the actual
// architecture (instead of the paper's rounded constants) reproduces the
// same optimum.
func TestCostCounterFeedsModel(t *testing.T) {
	summary, err := nncost.MNISTFullyConnected().Summarize()
	if err != nil {
		t.Fatal(err)
	}
	w := dmlscale.Workload{
		Name:            summary.Name,
		FlopsPerExample: float64(summary.TrainingFlops()),
		BatchSize:       60000,
		ModelBits:       dmlscale.Bits(64 * summary.Weights),
	}
	model, err := dmlscale.GradientDescent(w, dmlscale.XeonE31240(), dmlscale.SparkComm())
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := model.OptimalWorkers(13)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("architecture-derived optimum = %d, want 9", n)
	}
}

// TestModelAgainstSimulatedExperiment: the full Fig. 2 validation loop —
// analytic model vs the discrete-event Spark cluster — inside one test,
// asserting the paper's headline conclusions.
func TestModelAgainstSimulatedExperiment(t *testing.T) {
	w := gd.Workload{
		Name:            "fc",
		FlopsPerExample: 6 * 12e6,
		BatchSize:       60000,
		ModelBits:       units.Bits(64 * 12e6),
	}
	model, err := gd.Model(w, hardware.XeonE31240(), comm.SparkGradient(units.Gbps))
	if err != nil {
		t.Fatal(err)
	}
	workers := dmlscale.Workers(1, 13)
	modelCurve, err := model.SpeedupCurve(workers)
	if err != nil {
		t.Fatal(err)
	}
	simCurve, err := sparksim.SpeedupCurve(sparksim.PaperFig2Config(), workers, 2)
	if err != nil {
		t.Fatal(err)
	}
	mape, err := metrics.MAPE(simCurve.Speedups(), modelCurve.Speedups())
	if err != nil {
		t.Fatal(err)
	}
	if mape > 25 {
		t.Errorf("model-vs-simulation MAPE = %.1f%%, want the paper's neighbourhood", mape)
	}
	// Both curves agree that one-digit clusters are where the speedup
	// peaks.
	mPeak, _ := modelCurve.Peak()
	sPeak, _ := simCurve.Peak()
	if mPeak.N > 9 || sPeak.N > 9 {
		t.Errorf("peaks at model=%d sim=%d, want ≤ 9", mPeak.N, sPeak.N)
	}
}

// TestScheduledTrainingEndToEnd: the ScheduledSGD optimizer drives Train
// through the Stepper interface with a warmup linear-scaling schedule.
func TestScheduledTrainingEndToEnd(t *testing.T) {
	data, err := dataset.GaussianBlobs(120, 8, 3, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewMLP([]int{8, 16, 3}, func() nn.Layer { return &nn.Tanh{} },
		nn.SoftmaxCrossEntropy{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := gd.InverseScalingLR(0.01)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := gd.WithSchedule(&gd.SGD{LearningRate: 0.5}, schedule)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gd.Train(net, data, opt, gd.TrainOptions{Epochs: 30, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.LossHistory[0] {
		t.Errorf("scheduled training did not improve: %v -> %v",
			res.LossHistory[0], res.FinalLoss)
	}
	if acc := net.Accuracy(data.X, data.Labels); acc < 0.85 {
		t.Errorf("accuracy = %v", acc)
	}
}

// TestBPSpeedupModelAgainstRealPartition: the facade's GraphInference model
// and the real per-worker loads of a materialized graph tell the same
// story — heavy-tailed degrees cap the speedup below linear.
func TestBPSpeedupModelAgainstRealPartition(t *testing.T) {
	spec := graph.ScaledDNSGraph(6000)
	degrees, err := spec.Degrees(3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := dmlscale.GraphInference("bp", degrees, bp.OpsPerEdge(2),
		dmlscale.Flops(1e9), 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	s16 := model.Speedup(16)
	if s16 >= 16 {
		t.Errorf("model s(16) = %v; skew should keep it below linear", s16)
	}
	if s16 < 2 {
		t.Errorf("model s(16) = %v; the graph is not that skewed", s16)
	}
}

// TestRealBPOnSyntheticDNSGraph: materialize a small DNS-like graph, run
// the actual message-passing algorithm in parallel, and verify the paper's
// op accounting against the run.
func TestRealBPOnSyntheticDNSGraph(t *testing.T) {
	spec := graph.ScaledDNSGraph(3000)
	degrees, err := spec.Degrees(5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ChungLu(degrees, 6)
	if err != nil {
		t.Fatal(err)
	}
	model, err := mrf.Ising(g, 0.15, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bp.Run(model, bp.Options{MaxIterations: 60, Workers: 4, Damping: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BP did not converge (residual %g)", res.Residual)
	}
	wantOps := float64(res.Iterations) * float64(g.NumEdges()) * bp.OpsPerEdge(2)
	if math.Abs(res.Operations-wantOps) > 0.5 {
		t.Errorf("op accounting %v, want %v", res.Operations, wantOps)
	}
}

// TestScenarioDrivesFacade: a JSON scenario round-trips into the same model
// the facade builds directly.
func TestScenarioDrivesFacade(t *testing.T) {
	sc := scenario.Fig2()
	fromScenario, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := dmlscale.GradientDescent(dmlscale.Workload{
		Name:            "direct",
		FlopsPerExample: 6 * 12e6,
		BatchSize:       60000,
		ModelBits:       64 * 12e6,
	}, dmlscale.XeonE31240(), dmlscale.SparkComm())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 5, 9, 13} {
		a, b := float64(fromScenario.Time(n)), float64(direct.Time(n))
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("t(%d): scenario %v vs direct %v", n, a, b)
		}
	}
}
