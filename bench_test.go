package dmlscale_test

// One benchmark per paper artifact: each regenerates the corresponding
// table or figure through the experiment harness and reports the headline
// quantity (MAPE, optimum) as a custom metric alongside the runtime.
// Benchmarks run at quick fidelity so `go test -bench=. -benchmem` stays
// interactive; `cmd/dmls-experiments -full` regenerates the full-size
// figures.

import (
	"fmt"
	"runtime"
	"testing"

	"dmlscale"
	"dmlscale/internal/experiments"
	"dmlscale/internal/obs"
	"dmlscale/internal/scenario"
)

func benchOptions() experiments.Options {
	opts := experiments.QuickOptions()
	opts.Fig4Vertices = 160000
	return opts
}

// benchmarkExperiment runs one experiment per iteration and reports the
// named metrics.
func benchmarkExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, metricUnit(m))
		}
	}
}

// metricUnit renders a metric name as a benchmark unit label.
func metricUnit(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch r {
		case ' ', '%', '(', ')', '=':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFigure1 regenerates Fig. 1, the framework's example speedup
// curve with its peak at 14 nodes.
func BenchmarkFigure1(b *testing.B) {
	benchmarkExperiment(b, "fig1", "optimal workers", "peak speedup")
}

// BenchmarkTable1 regenerates Table I, the network configuration counts.
func BenchmarkTable1(b *testing.B) {
	benchmarkExperiment(b, "tab1", "fc parameters", "inception parameters")
}

// BenchmarkFigure2 regenerates Fig. 2, the fully-connected ANN speedup on
// the simulated Spark cluster (paper: optimum 9 workers, MAPE 13.7%).
func BenchmarkFigure2(b *testing.B) {
	benchmarkExperiment(b, "fig2", "MAPE %", "model optimal workers")
}

// BenchmarkFigure3 regenerates Fig. 3, the convolutional ANN weak-scaling
// speedup (paper: MAPE 1.2%).
func BenchmarkFigure3(b *testing.B) {
	benchmarkExperiment(b, "fig3", "MAPE %")
}

// BenchmarkFigure4 regenerates Fig. 4, the belief-propagation speedup on a
// DNS-like graph (paper: MAPE 25.4% on the full graph).
func BenchmarkFigure4(b *testing.B) {
	benchmarkExperiment(b, "fig4", "MAPE %")
}

// BenchmarkFigure4Small regenerates the §V-B text experiments on the
// downscaled graphs (paper: MAPE 26%, 19.6%, 23.5%).
func BenchmarkFigure4Small(b *testing.B) {
	benchmarkExperiment(b, "fig4s")
}

// BenchmarkAblationComm regenerates the communication-topology ablation.
func BenchmarkAblationComm(b *testing.B) {
	benchmarkExperiment(b, "abl-comm", "tree peak", "linear peak")
}

// BenchmarkAblationAsync regenerates the asynchronous-GD extension study.
func BenchmarkAblationAsync(b *testing.B) {
	benchmarkExperiment(b, "abl-async", "async optimal workers")
}

// BenchmarkAblationConvergence regenerates the convergence trade-off study.
func BenchmarkAblationConvergence(b *testing.B) {
	benchmarkExperiment(b, "abl-conv")
}

// BenchmarkAblationPartition regenerates the estimator-quality ablation.
func BenchmarkAblationPartition(b *testing.B) {
	benchmarkExperiment(b, "abl-part", "estimate/exact worst")
}

// benchSuite is a 10-scenario suite whose curves are individually expensive
// (Monte-Carlo graph inference on 60K-vertex DNS graphs), the case the
// concurrent evaluation layer exists for.
func benchSuite() dmlscale.Suite {
	scenarios := make([]dmlscale.Scenario, 0, 10)
	for i := 0; i < 10; i++ {
		scenarios = append(scenarios, dmlscale.Scenario{
			Name: fmt.Sprintf("bp sweep seed %d", i),
			Workload: scenario.WorkloadSpec{
				Family: "mrf",
				Graph:  &scenario.GraphSpec{Family: "dns", Vertices: 60000, Seed: int64(i)},
				States: 2,
				Trials: 3,
				Seed:   int64(i),
			},
			Hardware:   scenario.HardwareSpec{Preset: "dl980-core"},
			Protocol:   scenario.ProtocolSpec{Kind: "shared-memory"},
			MaxWorkers: 16,
		})
	}
	return dmlscale.Suite{Name: "bench suite", Scenarios: scenarios}
}

// benchmarkSuiteEval evaluates the benchmark suite at the given
// parallelism, failing on any per-curve error.
func benchmarkSuiteEval(b *testing.B, parallelism int) {
	b.Helper()
	suite := benchSuite()
	for i := 0; i < b.N; i++ {
		results, err := dmlscale.EvaluateSuite(suite, parallelism)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkSuiteSerial is the baseline: the 10-curve suite evaluated one
// curve at a time.
func BenchmarkSuiteSerial(b *testing.B) {
	benchmarkSuiteEval(b, 1)
}

// BenchmarkSuiteParallel evaluates the same suite on the full worker pool;
// compare ns/op against BenchmarkSuiteSerial to see the speedup.
func BenchmarkSuiteParallel(b *testing.B) {
	benchmarkSuiteEval(b, runtime.GOMAXPROCS(0))
}

// benchmarkSingleCurve evaluates ONE expensive curve (the benchSuite cell:
// Monte-Carlo graph inference on a 60K-vertex DNS graph, 16 worker counts)
// at a fixed shared-budget setting. Suite-level concurrency cannot help a
// one-scenario run; the serial-vs-parallel gap here is pure intra-curve
// parallelism (worker-count sharding plus Monte-Carlo trial sharding), and
// the outputs are bit-identical either way.
func benchmarkSingleCurve(b *testing.B, parallelism int) {
	b.Helper()
	suite := dmlscale.Suite{Name: "single curve", Scenarios: benchSuite().Scenarios[:1]}
	defer dmlscale.SetParallelism(0)
	dmlscale.SetParallelism(parallelism)
	for i := 0; i < b.N; i++ {
		results, err := dmlscale.EvaluateSuite(suite, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkSingleCurveSerial is the intra-curve baseline: budget 1, every
// worker count and trial evaluated on one goroutine.
func BenchmarkSingleCurveSerial(b *testing.B) {
	benchmarkSingleCurve(b, 1)
}

// BenchmarkSingleCurveParallel evaluates the same curve on the full budget;
// compare ns/op against BenchmarkSingleCurveSerial.
func BenchmarkSingleCurveParallel(b *testing.B) {
	benchmarkSingleCurve(b, runtime.GOMAXPROCS(0))
}

// benchKernelGrid is the cold-vs-warm benchmark workload: the 12-cell
// communication-axes grid over one DNS graph (kernelGridSuite), full-size
// normally, downscaled under -short so the CI smoke run stays quick.
func benchKernelGrid() dmlscale.Suite {
	vertices := 60000
	if testing.Short() {
		vertices = 8000
	}
	return kernelGridSuite(vertices)
}

// evaluateGrid runs one full suite evaluation, failing on any cell error.
func evaluateGrid(b *testing.B, suite dmlscale.Suite) {
	b.Helper()
	results, err := dmlscale.EvaluateSuite(suite, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkSweepGridColdVsWarm measures what the shared kernel cache buys a
// sweep grid that varies only communication-side axes: Cold resets every
// process-wide cache before each pass (graph generation plus 16 Monte-Carlo
// estimations per pass), Warm reuses them (pure arithmetic and cache hits).
// Compare ns/op between the two sub-benchmarks; results are bit-identical
// either way (TestSweepGridKernelComputedExactlyOnce asserts it).
func BenchmarkSweepGridColdVsWarm(b *testing.B) {
	suite := benchKernelGrid()
	defer dmlscale.ResetCaches()
	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dmlscale.ResetCaches()
			evaluateGrid(b, suite)
		}
	})
	b.Run("Warm", func(b *testing.B) {
		dmlscale.ResetCaches()
		evaluateGrid(b, suite) // prewarm: graph + every kernel estimate
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			evaluateGrid(b, suite)
		}
	})
}

// BenchmarkSweepCurveCold64 evaluates ONE Monte-Carlo graph curve across a
// full 64-point worker axis from cold caches every iteration — the shape
// the batched kernel exists for: the curve's first sampled point batch-fills
// all 64 estimates in one kernel pass (one RNG draw per vertex per trial,
// common random numbers across worker counts), so a cold curve costs one
// O(trials·V) pass plus arithmetic instead of 64 independent kernel runs.
func BenchmarkSweepCurveCold64(b *testing.B) {
	vertices := 60000
	if testing.Short() {
		vertices = 8000
	}
	suite := dmlscale.Suite{Name: "cold 64-point curve", Scenarios: []dmlscale.Scenario{{
		Name: "bp dns cold64",
		Workload: scenario.WorkloadSpec{
			Family: "mrf",
			Graph:  &scenario.GraphSpec{Family: "dns", Vertices: vertices, Seed: 11},
			States: 2,
			Trials: 3,
			Seed:   11,
		},
		Hardware:   scenario.HardwareSpec{Preset: "dl980-core"},
		Protocol:   scenario.ProtocolSpec{Kind: "shared-memory"},
		MaxWorkers: 64,
	}}}
	defer dmlscale.ResetCaches()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dmlscale.ResetCaches()
		evaluateGrid(b, suite)
	}
}

// BenchmarkPlanGridWarm ranks the same 12-cell grid with warm caches: the
// per-iteration fallback plans price every cell off cached kernel
// estimates, so planning cost is decoupled from Monte-Carlo cost.
func BenchmarkPlanGridWarm(b *testing.B) {
	suite := benchKernelGrid()
	defer dmlscale.ResetCaches()
	dmlscale.ResetCaches()
	if _, err := dmlscale.PlanSuite(suite, "", 0); err != nil { // prewarm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := dmlscale.PlanSuite(suite, "", 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range report.Plans {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// planBenchSuite is a 24-cell planning grid: the Fig. 3 workload with a
// diminishing-returns convergence block swept over protocol × bandwidth ×
// precision, each cell optimized over 128 worker counts.
func planBenchSuite() dmlscale.Suite {
	base := scenario.Fig3()
	base.Name = "conv ANN"
	base.MaxWorkers = 128
	base.Convergence = &dmlscale.ConvergenceSpec{
		Rule:                "diminishing",
		BaseIterations:      50000,
		CriticalBatchGrowth: 32,
	}
	return dmlscale.Suite{
		Name:      "plan bench grid",
		Objective: "pareto",
		Sweep: &dmlscale.Sweep{
			Base:                 base,
			Protocols:            []string{"two-stage-tree", "ring", "pipelined-tree", "linear"},
			BandwidthsBitsPerSec: []float64{1e9, 10e9, 100e9},
			PrecisionsBits:       []float64{16, 32},
		},
	}
}

// benchmarkPlanGrid ranks the planning grid at the given parallelism,
// failing on any per-cell error.
func benchmarkPlanGrid(b *testing.B, parallelism int) {
	b.Helper()
	suite := planBenchSuite()
	defer dmlscale.SetParallelism(0)
	dmlscale.SetParallelism(parallelism)
	for i := 0; i < b.N; i++ {
		report, err := dmlscale.PlanSuite(suite, "", 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range report.Plans {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkPlanGridSerial is the planner baseline: every cell planned on
// one goroutine.
func BenchmarkPlanGridSerial(b *testing.B) {
	benchmarkPlanGrid(b, 1)
}

// BenchmarkPlanGridParallel plans the same grid on the full shared budget;
// compare ns/op against BenchmarkPlanGridSerial. Output is bit-identical
// either way.
func BenchmarkPlanGridParallel(b *testing.B) {
	benchmarkPlanGrid(b, runtime.GOMAXPROCS(0))
}

// adaptiveBenchSuite is a ~10k-cell, five-axis planning grid (protocol ×
// hardware × bandwidth × precision × worker bound) over a convergence-aware
// gradient-descent workload — the million-cell-sweep shape at benchmarkable
// size, with worker bounds up to 1024 so each cell's curve is wide enough
// that evaluation, not catalog resolution, is the dominant cost, as in the
// paper-scale sweeps the streaming pass exists for.
func adaptiveBenchSuite() dmlscale.Suite {
	base := scenario.Fig3()
	base.Name = "conv ANN"
	base.Convergence = &dmlscale.ConvergenceSpec{
		Rule:                "diminishing",
		BaseIterations:      60000,
		CriticalBatchGrowth: 24,
	}
	bandwidths := make([]float64, 18)
	bw := 2e8
	for i := range bandwidths {
		bandwidths[i] = bw
		bw *= 1.5
	}
	workers := make([]int, 8)
	for i := range workers {
		workers[i] = 128 * (i + 1)
	}
	return dmlscale.Suite{
		Name:      "adaptive bench grid",
		Objective: "pareto",
		Sweep: &dmlscale.Sweep{
			Base:                 base,
			Protocols:            []string{"tree", "two-stage-tree", "spark", "ring", "pipelined-tree"},
			Hardware:             []string{"xeon-e3-1240", "nvidia-k40", "dl980-core"},
			BandwidthsBitsPerSec: bandwidths,
			PrecisionsBits:       []float64{8, 16, 32, 64, 80},
			MaxWorkers:           workers,
		},
	}
}

// BenchmarkSweepStreamPruned plans the adaptive grid both ways: Exhaustive
// evaluates all 10 800 cells, Pruned runs the streaming pass that discards
// cells whose optimistic bound is already Pareto-dominated. The frontier is
// identical in both (TestAdaptiveAcceptanceBigGrid asserts it); compare
// ns/op and B/op between the sub-benchmarks for the adaptive win.
func BenchmarkSweepStreamPruned(b *testing.B) {
	suite := adaptiveBenchSuite()
	run := func(b *testing.B, opts dmlscale.PlanOptions) {
		b.ReportAllocs()
		var stats dmlscale.EvalStats
		for i := 0; i < b.N; i++ {
			report, st, err := dmlscale.PlanSuiteAdaptive(suite, "", 0, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range report.Plans {
				if p.Err != nil {
					b.Fatal(p.Err)
				}
			}
			stats = st
		}
		b.ReportMetric(float64(stats.Evaluated), "evaluated")
		b.ReportMetric(float64(stats.Pruned), "pruned")
	}
	b.Run("Exhaustive", func(b *testing.B) { run(b, dmlscale.PlanOptions{}) })
	b.Run("Pruned", func(b *testing.B) { run(b, dmlscale.PlanOptions{Prune: true}) })
}

// BenchmarkSweepGridTracedVsUntraced pins the cost of the observability
// spine on the 12-cell kernel grid with warm caches. Untraced runs with no
// recorder installed — every obs.Start is one atomic load returning a nil
// span, so ns/op here versus the pre-instrumentation baseline is the
// nil-recorder overhead the obs package promises to keep under a couple of
// percent. Traced records every span into an in-memory TraceBuffer, the
// -trace flag's cost. Results are bit-identical in both modes
// (TestTracedSweepOutputBitIdentical asserts it at the CLI).
func BenchmarkSweepGridTracedVsUntraced(b *testing.B) {
	suite := benchKernelGrid()
	defer dmlscale.ResetCaches()
	dmlscale.ResetCaches()
	evaluateGrid(b, suite) // prewarm: graph + every kernel estimate
	b.Run("Untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			evaluateGrid(b, suite)
		}
	})
	b.Run("Traced", func(b *testing.B) {
		buf := obs.NewTraceBuffer(0)
		obs.SetRecorder(buf)
		defer obs.SetRecorder(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			evaluateGrid(b, suite)
		}
		b.ReportMetric(float64(buf.Ended())/float64(b.N), "spans/op")
	})
}
