// Communication topologies: how the same workload scales under different
// aggregation protocols. The paper's critique of linear cost models (Sparks
// et al.) is that real frameworks communicate over trees, torrents and
// all-reduce rings, which changes both the peak speedup and the optimal
// cluster size.
package main

import (
	"fmt"
	"log"

	"dmlscale"
	"dmlscale/internal/asciiplot"
)

func main() {
	workload := dmlscale.Workload{
		Name:            "12M-parameter network",
		FlopsPerExample: 6 * 12e6,
		BatchSize:       60000,
		ModelBits:       64 * 12e6,
	}
	protocols := []struct {
		name string
		comm dmlscale.CommModel
	}{
		{"linear (Sparks et al.)", dmlscale.LinearComm(1e9)},
		{"two-stage tree", dmlscale.TwoStageTreeComm(1e9)},
		{"spark torrent+sqrt", dmlscale.SparkComm()},
		{"ring all-reduce", dmlscale.RingAllReduceComm(1e9)},
	}

	workers := []int{1, 2, 4, 8, 16, 32, 64}
	var names []string
	var xs [][]int
	var ys [][]float64

	fmt.Println("protocol                 optimum  peak speedup  s(64)")
	for _, p := range protocols {
		model, err := dmlscale.GradientDescent(workload, dmlscale.XeonE31240(), p.comm)
		if err != nil {
			log.Fatal(err)
		}
		n, s, err := model.OptimalWorkers(64)
		if err != nil {
			log.Fatal(err)
		}
		curve, err := model.SpeedupCurve(workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %7d  %12.2f  %5.2f\n", p.name, n, s, model.Speedup(64))
		names = append(names, p.name)
		xs = append(xs, workers)
		ys = append(ys, curve.Speedups())
	}

	plot, err := asciiplot.CurvePlot("speedup by communication protocol", names, xs, ys, 64, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(plot)
	fmt.Println("Ring all-reduce amortizes aggregation across all links, so its speedup keeps")
	fmt.Println("climbing long after the linear protocol has drowned in transfers — the reason")
	fmt.Println("the paper models t_cm per topology instead of assuming t_cm ∝ n.")
}
