// Belief propagation, both for real and in the model: runs loopy BP on a
// small DNS-like graph (checking marginals against brute force on a tree),
// then builds the paper's Fig. 4 scalability model for a larger degree
// sequence.
package main

import (
	"fmt"
	"log"

	"dmlscale"
	"dmlscale/internal/bp"
	"dmlscale/internal/graph"
	"dmlscale/internal/mrf"
)

func main() {
	// 1. Exactness on a tree: BP marginals equal brute-force enumeration.
	tree, err := graph.CompleteBinaryTree(7)
	if err != nil {
		log.Fatal(err)
	}
	treeModel, err := mrf.Ising(tree, 0.4, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bp.Run(treeModel, bp.Options{MaxIterations: 100})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := treeModel.BruteForceMarginals()
	if err != nil {
		log.Fatal(err)
	}
	diff, err := bp.MaxMarginalDiff(res.Beliefs, exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BP on a 7-vertex tree: converged in %d iterations, max error vs exact %.2e\n\n",
		res.Iterations, diff)

	// 2. Real loopy BP on a DNS-like graph, parallel workers giving
	// identical results.
	spec := graph.ScaledDNSGraph(4000)
	degrees, err := spec.Degrees(7)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.ChungLu(degrees, 8)
	if err != nil {
		log.Fatal(err)
	}
	loopy, err := mrf.Ising(g, 0.2, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := bp.Run(loopy, bp.Options{MaxIterations: 100, Workers: 1, Damping: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	par, err := bp.Run(loopy, bp.Options{MaxIterations: 100, Workers: 8, Damping: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	pdiff, err := bp.MaxMarginalDiff(seq.Beliefs, par.Beliefs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loopy BP on a %d-vertex DNS-like graph (E=%d): %d iterations, converged=%v\n",
		g.NumVertices(), g.NumEdges(), seq.Iterations, seq.Converged)
	fmt.Printf("8-worker run reproduces the sequential beliefs exactly (max diff %.1e)\n\n", pdiff)

	// 3. The paper's scalability model for a bigger instance of the same
	// family (degree statistics are all it needs).
	bigger, err := graph.ScaledDNSGraph(400000).Degrees(9)
	if err != nil {
		log.Fatal(err)
	}
	model, err := dmlscale.GraphInference("BP on DNS graph", bigger,
		bp.OpsPerEdge(2), dmlscale.Flops(0.6e9), 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paper model, 400K-vertex graph (s(n) = E / maxEi(n)):")
	fmt.Println("workers  speedup")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 80} {
		fmt.Printf("%7d  %7.2f\n", n, model.Speedup(n))
	}
	fmt.Println("\nSkewed degrees cap the speedup well below linear: whoever owns the hub")
	fmt.Println("vertex finishes last, exactly what the paper's Fig. 4 shows.")
}
