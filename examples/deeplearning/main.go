// Deep learning on a Spark-like cluster: the paper's Fig. 2 scenario end to
// end. The analytic model (built from Table I's counts and the hardware
// spec) is compared against a discrete-event simulation of the Spark
// iteration — torrent broadcast, sharded gradient computation, two-wave
// aggregation — standing in for the paper's physical cluster.
package main

import (
	"fmt"
	"log"

	"dmlscale"
	"dmlscale/internal/asciiplot"
	"dmlscale/internal/metrics"
	"dmlscale/internal/nncost"
	"dmlscale/internal/sparksim"
)

func main() {
	// Derive the workload from the architecture itself, as the paper does
	// for Table I.
	summary, err := nncost.MNISTFullyConnected().Summarize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d weights, %d training flops/example\n\n",
		summary.Name, summary.Weights, summary.TrainingFlops())

	workload := dmlscale.Workload{
		Name:            summary.Name,
		FlopsPerExample: float64(summary.TrainingFlops()),
		BatchSize:       60000,
		ModelBits:       dmlscale.Bits(64 * summary.Weights),
	}
	model, err := dmlscale.GradientDescent(workload,
		dmlscale.XeonE31240(), dmlscale.SparkComm())
	if err != nil {
		log.Fatal(err)
	}

	workers := dmlscale.Workers(1, 13)
	modelCurve, err := model.SpeedupCurve(workers)
	if err != nil {
		log.Fatal(err)
	}
	simCurve, err := sparksim.SpeedupCurve(sparksim.PaperFig2Config(), workers, 3)
	if err != nil {
		log.Fatal(err)
	}

	plot, err := asciiplot.CurvePlot("Fig. 2 — one-iteration speedup, fully connected ANN",
		[]string{"analytic model", "simulated Spark cluster"},
		[][]int{workers, workers},
		[][]float64{modelCurve.Speedups(), simCurve.Speedups()}, 60, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plot)

	mape, err := metrics.MAPE(simCurve.Speedups(), modelCurve.Speedups())
	if err != nil {
		log.Fatal(err)
	}
	n, s, err := model.OptimalWorkers(13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model optimum: %d workers (%.1fx); paper reports 9\n", n, s)
	fmt.Printf("model-vs-experiment MAPE: %.1f%%; paper reports 13.7%%\n", mape)
}
