// Capacity planning: the two practitioner questions from the paper's
// introduction, answered with the model alone.
//
//  1. Strong scaling — given a workload, how many more machines cut the run
//     time by a target factor?
//  2. Weak scaling — the workload grows; how many machines keep the run
//     time the same?
package main

import (
	"fmt"
	"log"

	"dmlscale"
)

func main() {
	workload := dmlscale.Workload{
		Name:            "click-through-rate model",
		FlopsPerExample: 6 * 2e6, // 2M-parameter logistic-style model
		BatchSize:       10e6,    // 10M examples per batch
		ModelBits:       64 * 2e6,
	}
	model, err := dmlscale.GradientDescent(workload,
		dmlscale.XeonE31240(), dmlscale.SparkComm())
	if err != nil {
		log.Fatal(err)
	}

	// Question 1: we run on 4 machines today and need the iteration twice
	// as fast. Feasible?
	const current = 4
	tNow := model.Time(current)
	target := float64(tNow) / 2
	answer := 0
	for n := current + 1; n <= 256; n++ {
		if float64(model.Time(n)) <= target {
			answer = n
			break
		}
	}
	fmt.Printf("Q1 (strong scaling): iteration takes %v on %d machines.\n", tNow, current)
	if answer > 0 {
		fmt.Printf("    Halving it needs %d machines (%v per iteration).\n\n",
			answer, model.Time(answer))
	} else {
		n, s, _ := model.OptimalWorkers(256)
		fmt.Printf("    No cluster size halves it: communication caps speedup at %.1fx (n=%d).\n\n", s, n)
	}

	// Question 2: the training set grows 4x. How many machines keep the
	// iteration time of the current 4?
	grown := workload
	grown.BatchSize *= 4
	grownModel, err := dmlscale.GradientDescent(grown,
		dmlscale.XeonE31240(), dmlscale.SparkComm())
	if err != nil {
		log.Fatal(err)
	}
	answer2 := 0
	for n := current; n <= 256; n++ {
		if float64(grownModel.Time(n)) <= float64(tNow) {
			answer2 = n
			break
		}
	}
	fmt.Printf("Q2 (weak scaling): with 4x the data, ")
	if answer2 > 0 {
		fmt.Printf("%d machines keep the old %v iteration time.\n", answer2, tNow)
		fmt.Printf("    (Gustafson, not Amdahl: scaled workloads keep clusters efficient.)\n")
	} else {
		fmt.Printf("no cluster size ≤ 256 keeps the old time — rethink the batch or network.\n")
	}

	// And the global picture: where does this workload stop scaling at
	// all?
	n, s, err := model.OptimalWorkers(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFor the original workload the model caps useful clusters at %d machines (%.1fx).\n", n, s)
	fmt.Println("Every machine past that point is wasted on communication — the estimate the")
	fmt.Println("paper argues should precede any distributed deployment (and may prevent some).")
}
