// Planning walkthrough: from per-iteration curves to a recommendation.
//
// A sweep answers "how does each configuration scale per iteration?" — but a
// practitioner asks "which configuration trains to accuracy fastest, and at
// what cost?" Those differ because data-parallel gradient descent buys its
// per-iteration speedup by growing the effective batch, and larger batches
// change how many iterations convergence takes (the paper's §VI trade-off).
// This walkthrough builds one weak-scaling workload, attaches a convergence
// block, and lets the planner pick the cluster size and the interconnect.
package main

import (
	"fmt"
	"log"

	"dmlscale"
)

func main() {
	// The Fig. 3 convolutional workload: 5 GFLOP forward pass per example
	// (15 GFLOP with training), a 128-example per-worker batch, 25M
	// parameters shipped in 32-bit floats — K40 workers.
	base := dmlscale.Scenario{
		Name: "conv ANN",
		Workload: dmlscale.WorkloadSpec{
			Family:          "gd-weak",
			FlopsPerExample: 15e9,
			BatchSize:       128,
			Parameters:      25e6,
			PrecisionBits:   32,
		},
		Hardware:   dmlscale.HardwareSpec{Preset: "nvidia-k40"},
		Protocol:   dmlscale.ProtocolSpec{Kind: "two-stage-tree", BandwidthBitsPerSec: 1e9},
		MaxWorkers: 128,

		// The convergence block: 50,000 iterations to accuracy at one
		// worker, with diminishing statistical returns past a 32×
		// effective batch — the "critical batch size" shape measured in
		// practice. Under weak scaling the effective batch grows with the
		// worker count, so past 32 workers extra machines buy no fewer
		// iterations, only more communication.
		Convergence: &dmlscale.ConvergenceSpec{
			Rule:                "diminishing",
			BaseIterations:      50000,
			CriticalBatchGrowth: 32,
		},
	}

	// Sweep the interconnect: the planner ranks every cell by the
	// cost×time Pareto frontier.
	suite := dmlscale.Suite{
		Name:      "conv ANN: which interconnect, how many workers?",
		Objective: "pareto",
		Sweep: &dmlscale.Sweep{
			Base:                 base,
			Protocols:            []string{"two-stage-tree", "ring"},
			BandwidthsBitsPerSec: []float64{1e9, 10e9},
		},
	}

	report, err := dmlscale.PlanSuite(suite, "", 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rank  workers  t-to-accuracy  iterations  cost    frontier  scenario")
	for _, p := range report.Plans {
		if p.Err != nil {
			log.Fatal(p.Err)
		}
		frontier := " "
		if p.Pareto {
			frontier = "*"
		}
		fmt.Printf("%4d  %7d  %12.0fs  %10.0f  %6.2f  %8s  %s\n",
			p.Rank, p.Optimal.Workers, float64(p.Optimal.Time),
			p.Optimal.Iterations, p.Optimal.Cost, frontier, p.Scenario.Name)
	}

	best := report.Plans[0]
	fmt.Printf("\nRecommendation: %s with %d workers —\n", best.Scenario.Name, best.Optimal.Workers)
	fmt.Printf("trains to accuracy in %.0f iterations (%.0f s) for %.2f cost units.\n",
		best.Optimal.Iterations, float64(best.Optimal.Time), best.Optimal.Cost)
	fmt.Println("\nNote the optimum sits at the critical batch growth, not at the")
	fmt.Println("per-iteration optimum: beyond it, iterations stop shrinking and")
	fmt.Println("every extra worker only adds communication and cost.")
}
