// Quickstart: model a gradient-descent workload from its complexity figures
// and the hardware spec, then read off the speedup curve and the optimal
// cluster size — the paper's core workflow, no profiling required.
package main

import (
	"fmt"
	"log"

	"dmlscale"
)

func main() {
	// The paper's Fig. 2 workload: a 12M-parameter fully-connected
	// network trained by batch gradient descent on 60,000 examples.
	// Training one example costs 6·W flops; Spark ships 64-bit weights.
	workload := dmlscale.Workload{
		Name:            "fully connected ANN",
		FlopsPerExample: 6 * 12e6,
		BatchSize:       60000,
		ModelBits:       64 * 12e6,
	}

	model, err := dmlscale.GradientDescent(workload,
		dmlscale.XeonE31240(), dmlscale.SparkComm())
	if err != nil {
		log.Fatal(err)
	}

	curve, err := model.SpeedupCurve(dmlscale.Workers(1, 13))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workers  time      speedup  efficiency")
	for _, p := range curve.Points {
		fmt.Printf("%7d  %-8s  %7.2f  %9.0f%%\n",
			p.N, p.Time, p.Speedup, 100*p.Speedup/float64(p.N))
	}

	n, s, err := model.OptimalWorkers(13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nProvision %d workers: %.1fx faster than one machine.\n", n, s)
	fmt.Println("Beyond that, communication overhead eats the gains.")
}
