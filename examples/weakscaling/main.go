// Weak scaling of synchronous mini-batch SGD: the paper's Fig. 3 scenario.
// Every worker holds a fixed 128-example batch, so adding workers grows the
// effective batch; the metric is time per training instance, and the choice
// of communication topology decides whether scaling ever stops.
package main

import (
	"fmt"
	"log"

	"dmlscale"
	"dmlscale/internal/asciiplot"
)

func main() {
	workload := dmlscale.Workload{
		Name:            "Inception v3, sync SGD",
		FlopsPerExample: 3 * 5e9, // 3 passes × 5e9 multiply-adds
		BatchSize:       128,     // per worker
		ModelBits:       32 * 25e6,
	}

	logComm, err := dmlscale.GradientDescentWeak(workload,
		dmlscale.NvidiaK40(), dmlscale.TwoStageTreeComm(1e9))
	if err != nil {
		log.Fatal(err)
	}
	linComm, err := dmlscale.GradientDescentWeak(workload,
		dmlscale.NvidiaK40(), dmlscale.LinearComm(1e9))
	if err != nil {
		log.Fatal(err)
	}

	const base = 50
	workers := []int{25, 50, 100, 200, 400, 800}
	logCurve, err := logComm.SpeedupCurveRelative(base, workers)
	if err != nil {
		log.Fatal(err)
	}
	linCurve, err := linComm.SpeedupCurveRelative(base, workers)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-instance speedup relative to 50 workers:")
	fmt.Println("workers  log-tree comm  linear comm")
	for i, n := range workers {
		fmt.Printf("%7d  %13.2f  %11.2f\n", n,
			logCurve.Points[i].Speedup, linCurve.Points[i].Speedup)
	}

	plot, err := asciiplot.CurvePlot("Fig. 3 — weak scaling under two communication models",
		[]string{"logarithmic (infinite scaling)", "linear (finite scaling)"},
		[][]int{workers, workers},
		[][]float64{logCurve.Speedups(), linCurve.Speedups()}, 60, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(plot)
	fmt.Println("With logarithmic aggregation every added worker still improves per-instance")
	fmt.Println("throughput; with linear communication the speedup flattens — exactly the")
	fmt.Println("contrast the paper draws in §V-A.")
}
