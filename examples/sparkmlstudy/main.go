// Spark ML study: the paper's framework applied the way its authors used it
// — estimating, before any deployment, how far each Spark ML algorithm
// scales on a given cluster. Complexity figures come from the algorithm
// shapes alone; no profiling.
package main

import (
	"fmt"
	"log"

	"dmlscale"
	"dmlscale/internal/mlalgs"
	"dmlscale/internal/textio"
)

func main() {
	workloads, err := mlalgs.Catalog()
	if err != nil {
		log.Fatal(err)
	}

	node := dmlscale.XeonE31240()
	table := textio.NewTable("algorithm", "optimum", "peak speedup",
		"workers for 4x", "verdict")
	for _, w := range workloads {
		model, err := dmlscale.GradientDescent(w, node, dmlscale.SparkComm())
		if err != nil {
			log.Fatal(err)
		}
		n, s, err := model.OptimalWorkers(64)
		if err != nil {
			log.Fatal(err)
		}
		fourX := "unreachable"
		if k, ok := model.MinWorkersFor(4, 64); ok {
			fourX = fmt.Sprintf("%d", k)
		}
		verdict := "scale it out"
		switch {
		case s < 1.5:
			verdict = "keep it on one machine"
		case s < 8:
			verdict = "small cluster only"
		}
		table.AddRow(w.Name, n, s, fourX, verdict)
	}
	fmt.Println("Spark ML scalability study — Xeon E3-1240 workers, 1 Gbit/s Ethernet")
	fmt.Println()
	fmt.Println(table.String())
	fmt.Println("The spread is the paper's point: the same cluster is 50x faster for")
	fmt.Println("k-means and useless for ALS, and a back-of-the-envelope model tells")
	fmt.Println("you which before you provision anything.")
}
